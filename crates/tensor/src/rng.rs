//! Deterministic pseudo-random number generation.
//!
//! Model-lake experiments must be bit-reproducible: the benchmark lake with
//! *verified ground truth* that the paper calls for (§3, §5) is only verified
//! if regenerating it yields the identical population of models. We therefore
//! implement PCG64 (PCG XSL RR 128/64, O'Neill 2014) from scratch instead of
//! depending on `rand`, and expose [`Seed`] for hierarchical seed derivation
//! so that independent subsystems draw from independent streams.

/// A 64-bit-output permuted congruential generator (PCG XSL RR 128/64).
///
/// State and increment are 128-bit; output is the xor-shifted, randomly
/// rotated high/low halves. Passes practical statistical testing and is more
/// than adequate for synthetic-data generation and stochastic training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;
const PCG_DEFAULT_INC: u128 = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f;

impl Pcg64 {
    /// Creates a generator from a 64-bit seed using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_inc(seed, PCG_DEFAULT_INC)
    }

    /// Creates a generator on an explicit stream; distinct `stream` values
    /// yield statistically independent sequences for the same `seed`.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        Self::with_inc(seed, ((stream as u128) << 1) | 1)
    }

    fn with_inc(seed: u64, inc: u128) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: inc | 1,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(seed as u128 ^ ((seed as u128) << 64));
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Next uniformly distributed `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Next uniformly distributed `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire rejection to avoid modulo
    /// bias. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires bound > 0");
        // Lemire's multiply-shift with rejection on the biased region.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Draw u1 away from zero so ln() stays finite.
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fills `out` with standard normal samples.
    pub fn fill_normal(&mut self, out: &mut [f32]) {
        for v in out {
            *v = self.normal();
        }
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Chooses a uniformly random element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir sampling);
    /// returns fewer than `k` only when `n < k`. Output is sorted.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }

    /// Samples an index from an (unnormalised) non-negative weight vector.
    /// Returns `None` if the total weight is not positive and finite.
    pub fn weighted_index(&mut self, weights: &[f32]) -> Option<usize> {
        let total: f64 = weights.iter().map(|w| f64::from(w.max(0.0))).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut t = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            t -= f64::from(w.max(0.0));
            if t <= 0.0 {
                return Some(i);
            }
        }
        Some(weights.len() - 1)
    }
}

/// Hierarchical seed derivation.
///
/// Subsystems must not share RNG streams (otherwise adding a draw in one
/// place silently reshuffles another experiment). `Seed` wraps a root `u64`
/// and derives child seeds from string labels via a split-mix style hash, so
/// `Seed::new(7).derive("lake").derive("model-3")` is stable across runs and
/// independent of `Seed::new(7).derive("probes")`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Seed {
    /// Wraps a root seed.
    pub fn new(root: u64) -> Self {
        Seed(root)
    }

    /// Derives a child seed from a textual label.
    pub fn derive(self, label: &str) -> Seed {
        let mut h = self.0 ^ 0x9e37_79b9_7f4a_7c15;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
            h = splitmix(h);
        }
        Seed(splitmix(h))
    }

    /// Derives a child seed from an integer label (e.g. a model index).
    pub fn derive_u64(self, n: u64) -> Seed {
        Seed(splitmix(self.0 ^ splitmix(n.wrapping_add(0xa076_1d64_78bd_642f))))
    }

    /// Builds a PCG64 generator seeded by this seed.
    pub fn rng(self) -> Pcg64 {
        Pcg64::new(self.0)
    }
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Pcg64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Pcg64::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for c in counts {
            // expectation 10_000, allow ±5%
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg64::new(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = f64::from(rng.normal());
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg64::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_sorted() {
        let mut rng = Pcg64::new(3);
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        for w in sample.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Requesting more than available returns everything.
        assert_eq!(rng.sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Pcg64::new(13);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn seed_derivation_is_stable_and_disjoint() {
        let root = Seed::new(99);
        let a = root.derive("lake");
        let b = root.derive("probes");
        assert_eq!(a, Seed::new(99).derive("lake"));
        assert_ne!(a, b);
        assert_ne!(root.derive_u64(1), root.derive_u64(2));
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg64::with_stream(42, 1);
        let mut b = Pcg64::with_stream(42, 2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Pcg64::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[7u8]), Some(&7));
    }
}
