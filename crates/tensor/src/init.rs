//! Weight initialisation schemes.
//!
//! Different base models in the benchmark lake are initialised with different
//! schemes so that "same architecture, different init" populations exist —
//! the hard case for version-graph recovery (§4 "Model Versions").

use crate::matrix::Matrix;
use crate::rng::Pcg64;

/// Supported initialisation schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Glorot/Xavier normal: `N(0, 2 / (fan_in + fan_out))`.
    XavierNormal,
    /// He/Kaiming normal: `N(0, 2 / fan_in)` — paired with ReLU layers.
    HeNormal,
    /// Plain `N(0, std²)`.
    Normal {
        /// Standard deviation (bit pattern; construct via [`Init::normal`]).
        std_bits: u32,
    },
}

impl Init {
    /// `N(0, std²)` initialisation.
    pub fn normal(std: f32) -> Init {
        Init::Normal {
            std_bits: std.to_bits(),
        }
    }

    /// Materialises a `fan_out × fan_in` weight matrix.
    pub fn matrix(self, fan_out: usize, fan_in: usize, rng: &mut Pcg64) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(fan_out, fan_in),
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                Matrix::from_fn(fan_out, fan_in, |_, _| rng.uniform(-a, a))
            }
            Init::XavierNormal => {
                let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
                Matrix::from_fn(fan_out, fan_in, |_, _| rng.normal_with(0.0, std))
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Matrix::from_fn(fan_out, fan_in, |_, _| rng.normal_with(0.0, std))
            }
            Init::Normal { std_bits } => {
                let std = f32::from_bits(std_bits);
                Matrix::from_fn(fan_out, fan_in, |_, _| rng.normal_with(0.0, std))
            }
        }
    }

    /// Materialises a bias vector of length `n`.
    pub fn vector(self, n: usize, rng: &mut Pcg64) -> Vec<f32> {
        self.matrix(1, n, rng).into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn zeros_are_zero() {
        let mut rng = Pcg64::new(1);
        let m = Init::Zeros.matrix(3, 4, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = Pcg64::new(2);
        let (fan_out, fan_in) = (50, 70);
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let m = Init::XavierUniform.matrix(fan_out, fan_in, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn he_normal_variance() {
        let mut rng = Pcg64::new(3);
        let m = Init::HeNormal.matrix(200, 100, &mut rng);
        let var = stats::variance(m.as_slice());
        let expected = 2.0 / 100.0;
        assert!((var - expected).abs() / expected < 0.1, "var {var}");
    }

    #[test]
    fn normal_std_round_trips_through_bits() {
        let init = Init::normal(0.05);
        let mut rng = Pcg64::new(4);
        let m = init.matrix(100, 100, &mut rng);
        let std = stats::variance(m.as_slice()).sqrt();
        assert!((std - 0.05).abs() < 0.005, "std {std}");
        let json = serde_json::to_string(&init).unwrap();
        let back: Init = serde_json::from_str(&json).unwrap();
        assert_eq!(init, back);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::XavierNormal.matrix(4, 4, &mut Pcg64::new(9));
        let b = Init::XavierNormal.matrix(4, 4, &mut Pcg64::new(9));
        assert_eq!(a, b);
    }
}
