//! Free functions over `&[f32]` slices.
//!
//! Hot paths throughout the workspace (fingerprint distances, HNSW search,
//! gradient updates) operate on plain slices to avoid any wrapper overhead;
//! accumulation happens in `f64` where it guards against cancellation.

/// Dot product. Panics in debug builds on length mismatch; in release the
/// shorter length governs (callers validate shapes at the matrix level).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    // Manual 4-way unroll: keeps four independent dependency chains which the
    // compiler turns into SIMD on x86-64.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    for i in chunks * 4..a.len().min(b.len()) {
        acc += a[i] * b[i];
    }
    acc + s0 + s1 + s2 + s3
}

/// Euclidean (L2) norm.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt() as f32
}

/// L1 norm.
#[inline]
pub fn l1_norm(a: &[f32]) -> f32 {
    a.iter().map(|&x| f64::from(x.abs())).sum::<f64>() as f32
}

/// L∞ norm.
#[inline]
pub fn linf_norm(a: &[f32]) -> f32 {
    a.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Squared Euclidean distance.
///
/// Four independent `f64` accumulation chains (summed lane 0 → 3 at the
/// end) keep the FP pipeline busy and vectorize to 256-bit lanes; `f64`
/// accumulation still guards against cancellation.
#[inline]
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let mut s = [0.0f64; 4];
    for i in 0..chunks {
        let j = i * 4;
        for (l, sl) in s.iter_mut().enumerate() {
            let d = f64::from(a[j + l]) - f64::from(b[j + l]);
            *sl += d * d;
        }
    }
    let mut tail = 0.0f64;
    for i in chunks * 4..n {
        let d = f64::from(a[i]) - f64::from(b[i]);
        tail += d * d;
    }
    (s[0] + s[1] + s[2] + s[3] + tail) as f32
}

/// Euclidean distance.
#[inline]
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    l2_distance_sq(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`; returns 0 when either vector is all-zero.
///
/// Fused single pass: the dot product and both squared norms come out of
/// one traversal (this is the hot distance of the vector indexes, so one
/// memory sweep instead of three matters more than the extra registers).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let mut d = [0.0f32; 4];
    let mut qa = [0.0f64; 4];
    let mut qb = [0.0f64; 4];
    for i in 0..chunks {
        let j = i * 4;
        for l in 0..4 {
            let (x, y) = (a[j + l], b[j + l]);
            d[l] += x * y;
            qa[l] += f64::from(x) * f64::from(x);
            qb[l] += f64::from(y) * f64::from(y);
        }
    }
    let mut dt = 0.0f32;
    let (mut qat, mut qbt) = (0.0f64, 0.0f64);
    for i in chunks * 4..n {
        let (x, y) = (a[i], b[i]);
        dt += x * y;
        qat += f64::from(x) * f64::from(x);
        qbt += f64::from(y) * f64::from(y);
    }
    let na = (qa[0] + qa[1] + qa[2] + qa[3] + qat).sqrt() as f32;
    let nb = (qb[0] + qb[1] + qb[2] + qb[3] + qbt).sqrt() as f32;
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let dot = dt + d[0] + d[1] + d[2] + d[3];
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine *distance* `1 - cosine_similarity`, the metric used by the indexes.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// In-place `a += alpha * b`.
#[inline]
pub fn axpy(alpha: f32, b: &[f32], a: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// In-place scalar multiply.
#[inline]
pub fn scale(a: &mut [f32], alpha: f32) {
    for x in a {
        *x *= alpha;
    }
}

/// Normalises to unit L2 norm in place; a zero vector is left unchanged.
pub fn normalize(a: &mut [f32]) {
    let n = l2_norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Index of the maximum element (first on ties); `None` when empty.
pub fn argmax(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in a.iter().enumerate() {
        match best {
            Some((_, bx)) if bx >= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first on ties); `None` when empty.
pub fn argmin(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in a.iter().enumerate() {
        match best {
            Some((_, bx)) if bx <= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Numerically stable softmax into a fresh vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let exps: Vec<f64> = logits.iter().map(|&x| f64::from(x - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| (e / total) as f32).collect()
}

/// Numerically stable log-sum-exp.
pub fn log_sum_exp(logits: &[f32]) -> f32 {
    if logits.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    if max == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    let s: f64 = logits.iter().map(|&x| f64::from(x - max).exp()).sum();
    max + s.ln() as f32
}

/// Arithmetic mean (0 when empty).
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        (a.iter().map(|&x| f64::from(x)).sum::<f64>() / a.len() as f64) as f32
    }
}

/// Sum in `f64` accumulation.
pub fn sum(a: &[f32]) -> f32 {
    a.iter().map(|&x| f64::from(x)).sum::<f64>() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5 - 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn norms() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert!((l1_norm(&[3.0, -4.0]) - 7.0).abs() < 1e-6);
        assert!((linf_norm(&[3.0, -4.0]) - 4.0).abs() < 1e-6);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((l2_distance(&a, &b) - 5.0).abs() < 1e-6);
        assert!((l2_distance_sq(&a, &b) - 25.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_extremes() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine_distance(&[1.0, 1.0], &[1.0, 1.0])).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large logits.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-5);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn log_sum_exp_stable() {
        let lse = log_sum_exp(&[1000.0, 1000.0]);
        assert!((lse - (1000.0 + std::f32::consts::LN_2)).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn argmax_argmin_ties_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, -3.0, -3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn normalize_unit_or_noop() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut a);
        assert_eq!(a, vec![21.0, 42.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![10.5, 21.0]);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-6);
    }
}
