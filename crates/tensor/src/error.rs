//! Error type shared by all tensor operations.

use std::fmt;

/// Errors produced by tensor and linear-algebra operations.
///
/// The variants carry enough shape information to diagnose the failing call
/// without a debugger; database-style code paths (ingestion, fingerprinting)
/// surface these to callers rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes, e.g. `matmul` of `(2,3)` and `(2,3)`.
    ShapeMismatch {
        /// Operation that failed, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A constructor was given a data buffer whose length does not match the
    /// requested shape.
    BadBuffer {
        /// Expected number of elements.
        expected: usize,
        /// Actual number of elements supplied.
        actual: usize,
    },
    /// An index `(row, col)` was outside the matrix bounds.
    OutOfBounds {
        /// Offending index.
        index: (usize, usize),
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// An operation required a non-empty input but received an empty one.
    Empty(&'static str),
    /// A numeric routine failed to converge or met a singular system.
    Numerical(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::BadBuffer { expected, actual } => write!(
                f,
                "buffer length {actual} does not match requested shape ({expected} elements)"
            ),
            TensorError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::Empty(op) => write!(f, "`{op}` requires a non-empty input"),
            TensorError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (2, 3),
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TensorError::Empty("mean"));
        assert!(e.to_string().contains("mean"));
    }
}
