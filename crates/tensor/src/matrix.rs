//! Row-major dense `f32` matrix.

use crate::error::TensorError;
use crate::rng::Pcg64;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Row block size for the cache-blocked matmul: rows of the left operand
/// that reuse one L2-resident panel of the right operand.
const MC: usize = 64;
/// Depth panel size for the cache-blocked matmul: with typical column
/// counts in this workspace (≤ a few hundred) a `KC × cols` f32 panel of
/// the right operand stays within L2.
const KC: usize = 256;

/// Accumulates `orow += a0·b0 + a1·b1` in one pass: two independent
/// multiply-add chains per output element for the auto-vectorizer, and
/// half the passes over `orow` compared with two separate saxpys.
#[inline]
fn saxpy2(orow: &mut [f32], a0: f32, b0: &[f32], a1: f32, b1: &[f32]) {
    for ((o, &x0), &x1) in orow.iter_mut().zip(b0).zip(b1) {
        *o += a0 * x0 + a1 * x1;
    }
}

/// One depth panel `[kb, kend)` of an output row: `orow += arow[kb..kend] · b`.
#[inline]
fn matmul_panel(arow: &[f32], b: &[f32], orow: &mut [f32], kb: usize, kend: usize, n: usize) {
    let mut k = kb;
    while k + 1 < kend {
        let (a0, a1) = (arow[k], arow[k + 1]);
        if a0 == 0.0 && a1 == 0.0 {
            k += 2;
            continue;
        }
        saxpy2(
            orow,
            a0,
            &b[k * n..(k + 1) * n],
            a1,
            &b[(k + 1) * n..(k + 2) * n],
        );
        k += 2;
    }
    if k < kend {
        let a0 = arow[k];
        if a0 != 0.0 {
            for (o, &x) in orow.iter_mut().zip(&b[k * n..(k + 1) * n]) {
                *o += a0 * x;
            }
        }
    }
}

/// Pointer wrapper for provably disjoint cross-thread writes (see `gram`).
struct SendPtr(*mut f32);
// SAFETY: every user writes only to row blocks it exclusively owns (the
// parallel tiling partitions the output), so shared access never aliases.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// A dense, row-major `f32` matrix.
///
/// This is the universal carrier for model parameters `θ`, datasets `D`,
/// activation batches and fingerprint embeddings throughout the workspace.
/// Operations that can fail on shapes return [`Result`]; infallible panicking
/// variants are deliberately not offered so that ingestion pipelines degrade
/// gracefully on malformed artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::Empty("from_rows"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::BadBuffer {
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix { rows: 1, cols, data }
    }

    /// An n×1 column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Matrix { rows, cols: 1, data }
    }

    /// Fills a new matrix by calling `f(row, col)` per element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Standard-normal random matrix (used for JL sketches and init).
    pub fn randn(rows: usize, cols: usize, rng: &mut Pcg64) -> Self {
        let mut data = vec![0.0; rows * cols];
        rng.fill_normal(&mut data);
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access with bounds checking.
    pub fn get(&self, r: usize, c: usize) -> Result<f32> {
        if r >= self.rows || c >= self.cols {
            return Err(TensorError::OutOfBounds {
                index: (r, c),
                shape: self.shape(),
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Unchecked-by-contract element access; panics only in debug builds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets one element with bounds checking.
    pub fn set(&mut self, r: usize, c: usize, v: f32) -> Result<()> {
        if r >= self.rows || c >= self.cols {
            return Err(TensorError::OutOfBounds {
                index: (r, c),
                shape: self.shape(),
            });
        }
        self.data[r * self.cols + c] = v;
        Ok(())
    }

    /// In-place element update without bounds checks in release builds.
    #[inline]
    pub fn set_at(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix product `self · rhs`.
    ///
    /// Cache-blocked and parallel: the row dimension is split across the
    /// shared pool (each output row is produced entirely by one thread)
    /// and the depth dimension is tiled in [`KC`]-sized panels so the
    /// active slab of `rhs` stays in L2 while a block of output rows
    /// reuses it. Within a row the panel microkernel consumes two depth
    /// steps per pass ([`saxpy2`]), giving two independent FMA chains for
    /// the auto-vectorizer. Per output element the accumulation order is
    /// a function of the shapes alone — never of the thread count — so
    /// results are bit-identical for any `MLAKE_THREADS`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || k == 0 || n == 0 {
            return Ok(out);
        }
        // Rows per parallel chunk: aim for ≥ ~32k MACs per unit of work so
        // small products never pay scheduling overhead, cap at the L2 row
        // block size.
        let rows_per_chunk = (32_768 / (k * n).max(1)).clamp(1, MC);
        let a = &self.data;
        let b = &rhs.data;
        mlake_par::par_chunks_mut(&mut out.data, rows_per_chunk * n, |ci, chunk| {
            let i0 = ci * rows_per_chunk;
            let mut kb = 0;
            while kb < k {
                let kend = (kb + KC).min(k);
                for (di, orow) in chunk.chunks_exact_mut(n).enumerate() {
                    let arow = &a[(i0 + di) * k..(i0 + di + 1) * k];
                    matmul_panel(arow, b, orow, kb, kend, n);
                }
                kb = kend;
            }
        });
        Ok(out)
    }

    /// Reference single-threaded ikj matrix product (the seed kernel).
    ///
    /// Kept for the equivalence property tests and benchmarks; produces
    /// the same result as [`Matrix::matmul`] up to floating-point
    /// reassociation of the depth sum.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x` (row-parallel for tall matrices).
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let grain = (16_384 / self.cols.max(1)).max(1);
        Ok(mlake_par::par_map_index(self.rows, grain, |r| {
            crate::vector::dot(self.row(r), x)
        }))
    }

    /// Transposed-matrix–vector product `selfᵀ · x`.
    ///
    /// Parallelized as a fixed-block map-reduce over row panels: partial
    /// `selfᵀ·x` vectors per block of [`KC`] rows, folded in block order,
    /// so the result is bit-identical across thread counts.
    pub fn t_matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "t_matvec",
                lhs: (self.cols, self.rows),
                rhs: (x.len(), 1),
            });
        }
        let cols = self.cols;
        let folded = mlake_par::par_map_reduce(
            self.rows,
            KC,
            |range| {
                let mut partial = vec![0.0f32; cols];
                for r in range {
                    let xv = x[r];
                    if xv == 0.0 {
                        continue;
                    }
                    for (o, &m) in partial.iter_mut().zip(self.row(r)) {
                        *o += xv * m;
                    }
                }
                partial
            },
            |mut acc, block| {
                for (o, &p) in acc.iter_mut().zip(&block) {
                    *o += p;
                }
                acc
            },
        );
        Ok(folded.unwrap_or_else(|| vec![0.0; cols]))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += alpha * rhs` (the workhorse of SGD updates).
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Matrix {
        self.map(|x| x * scalar)
    }

    /// In-place scalar multiply.
    pub fn scale_mut(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Applies `f` element-wise into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_mut(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        crate::vector::l2_norm(&self.data)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| f64::from(x)).sum::<f64>() as f32
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Per-column means as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f64; self.cols];
        for row in self.rows_iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += f64::from(v);
            }
        }
        let n = self.rows.max(1) as f64;
        means.into_iter().map(|m| (m / n) as f32).collect()
    }

    /// Centers columns in place (subtracts the column mean).
    pub fn center_cols(&mut self) {
        let means = self.col_means();
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, m) in row.iter_mut().zip(&means) {
                *v -= m;
            }
        }
    }

    /// Extracts a sub-matrix of whole rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.rows {
            return Err(TensorError::OutOfBounds {
                index: (start, end),
                shape: self.shape(),
            });
        }
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Gathers the given rows (with repetition allowed) into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(TensorError::OutOfBounds {
                    index: (i, 0),
                    shape: self.shape(),
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Stacks two matrices vertically.
    pub fn vstack(&self, below: &Matrix) -> Result<Matrix> {
        if self.cols != below.cols {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: below.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&below.data);
        Ok(Matrix {
            rows: self.rows + below.rows,
            cols: self.cols,
            data,
        })
    }

    /// Gram matrix `self · selfᵀ` (used by CKA).
    ///
    /// Parallel over the rows of the upper triangle; each `(i, j)` pair
    /// with `j ≥ i` is computed once by the owner of row `i`, which also
    /// writes the mirror cell `(j, i)`.
    pub fn gram(&self) -> Matrix {
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        let grain = (16_384 / (self.cols.max(1) * n.max(1)).max(1)).max(1);
        let ptr = SendPtr(out.data.as_mut_ptr());
        mlake_par::par_for(n, grain, |range| {
            let base = &ptr;
            for i in range {
                for j in i..n {
                    let v = crate::vector::dot(self.row(i), self.row(j));
                    // SAFETY: cell (r, c) is written only by the thread
                    // owning row min(r, c); row ranges are disjoint, so no
                    // two threads touch the same cell.
                    unsafe {
                        base.0.add(i * n + j).write(v);
                        base.0.add(j * n + i).write(v);
                    }
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn constructors_validate() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let id = Matrix::identity(3);
        assert_eq!(id.at(0, 0), 1.0);
        assert_eq!(id.at(0, 1), 0.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert!(approx_eq_slice(c.as_slice(), &[58.0, 64.0, 139.0, 154.0], 1e-5));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(2, 2, &[1.5, -2.0, 0.25, 3.0]);
        let c = a.matmul(&Matrix::identity(2)).unwrap();
        assert!(approx_eq_slice(a.as_slice(), c.as_slice(), 1e-6));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_t_matvec_agree_with_matmul() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![1.0, 0.5, -1.0];
        let y = a.matvec(&x).unwrap();
        assert!(approx_eq_slice(&y, &[-1.0, 0.5], 1e-5));
        let z = a.t_matvec(&[1.0, -1.0]).unwrap();
        assert!(approx_eq_slice(&z, &[-3.0, -3.0, -3.0], 1e-5));
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.t_matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert!(approx_eq_slice(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0], 0.0));
        assert!(approx_eq_slice(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0], 0.0));
        assert!(approx_eq_slice(
            a.hadamard(&b).unwrap().as_slice(),
            &[4.0, 10.0, 18.0],
            0.0
        ));
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let g = m(1, 2, &[2.0, -4.0]);
        a.axpy(-0.5, &g).unwrap();
        assert!(approx_eq_slice(a.as_slice(), &[0.0, 3.0], 1e-6));
    }

    #[test]
    fn norms_and_means() {
        let a = m(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((a.mean() - 1.75).abs() < 1e-6);
        assert!(approx_eq_slice(&a.col_means(), &[1.5, 2.0], 1e-6));
    }

    #[test]
    fn center_cols_zeroes_means() {
        let mut a = m(3, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        a.center_cols();
        let means = a.col_means();
        assert!(means.iter().all(|m| m.abs() < 1e-5));
    }

    #[test]
    fn row_col_accessors() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
        assert!(a.get(2, 0).is_err());
        assert!(a.get(0, 3).is_err());
        assert_eq!(a.get(1, 2).unwrap(), 6.0);
    }

    #[test]
    fn slicing_and_selection() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[3.0, 4.0]);
        let sel = a.select_rows(&[2, 0, 2]).unwrap();
        assert_eq!(sel.row(0), &[5.0, 6.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
        assert!(a.select_rows(&[3]).is_err());
        assert!(a.slice_rows(2, 1).is_err());
    }

    #[test]
    fn vstack_concatenates() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = a.vstack(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = m(2, 3, &[1.0, 0.0, 2.0, -1.0, 1.0, 0.0]);
        let g = a.gram();
        assert_eq!(g.shape(), (2, 2));
        assert!((g.at(0, 1) - g.at(1, 0)).abs() < 1e-6);
        assert!(g.at(0, 0) >= 0.0 && g.at(1, 1) >= 0.0);
        assert!((g.at(0, 0) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn from_fn_layout() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.row(1), &[10.0, 11.0, 12.0]);
    }
}
