//! SQ8 scalar quantization: 4× smaller vectors, integer distance kernels.
//!
//! The vector indexes spend their time streaming `f32` embeddings through
//! distance kernels; at lake scale the scan is memory-bound. [`Sq8Codec`]
//! maps each dimension affinely onto `u8` codes so a scan touches a quarter
//! of the bytes and the inner loop runs on 8-bit integer lanes (four times
//! the SIMD width of `f32`). Exactness is *not* claimed here — the index
//! layer re-ranks a candidate pool with the full-precision kernels
//! (`Precision::Sq8Rescore` in `mlake-index`), so quantization error costs
//! recall only when it pushes a true neighbour out of the pool.
//!
//! ## Codec math
//!
//! Calibration scans a training sample and records per-dimension ranges
//! `[min_i, max_i]`, plus one **shared step size**
//! `s = max_i (max_i − min_i) / 255`. A value encodes as
//! `c_i = round((x_i − min_i) / s)` clamped to `[0, 255]` and decodes as
//! `x̂_i = min_i + s·c_i`, so `|x̂_i − x_i| ≤ s/2` for in-range inputs.
//!
//! Sharing `s` across dimensions (rather than a per-dimension step) is what
//! makes the integer kernels exact over *decoded* values: the per-dimension
//! offsets cancel in differences, `x̂_i − ŷ_i = s·(cx_i − cy_i)`, so
//!
//! ```text
//! ‖x̂ − ŷ‖² = s² · Σ (cx_i − cy_i)²
//! ```
//!
//! and the whole distance is one integer accumulation mapped back through a
//! single multiply. The price is that narrow dimensions use fewer of the
//! 256 levels; the rescoring pass absorbs that.

use crate::error::TensorError;
use crate::Result;

/// Flush u32 accumulator lanes into the u64 total at least this often.
/// Each addend is at most 255² = 65 025, so a u32 lane is safe for
/// `u32::MAX / 65 025 ≈ 66 051` addends; flushing every 16 384 keeps a 4×
/// margin regardless of vector dimension.
const FLUSH_EVERY: usize = 16_384;

/// Per-dimension affine scalar quantizer to `u8` with a shared step size.
///
/// Train on a representative sample with [`Sq8Codec::train`] /
/// [`Sq8Codec::train_flat`]; values outside the calibrated range clamp to
/// the nearest code (encode never fails on finite input).
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Codec {
    /// Per-dimension lower bound of the calibrated range.
    mins: Vec<f32>,
    /// Shared quantization step (strictly positive).
    step: f32,
}

impl Sq8Codec {
    /// Trains a codec on sample rows (all of equal length).
    pub fn train(samples: &[Vec<f32>]) -> Result<Sq8Codec> {
        let Some(first) = samples.first() else {
            return Err(TensorError::Empty("sq8 train"));
        };
        let dim = first.len();
        for s in samples {
            if s.len() != dim {
                return Err(TensorError::ShapeMismatch {
                    op: "sq8_train",
                    lhs: (dim, 1),
                    rhs: (s.len(), 1),
                });
            }
        }
        let flat: Vec<f32> = samples.iter().flat_map(|s| s.iter().copied()).collect();
        Sq8Codec::train_flat(&flat, dim)
    }

    /// Trains a codec on a contiguous row-major sample buffer (the layout
    /// of the index arenas). `data.len()` must be a positive multiple of
    /// `dim`; all values must be finite.
    pub fn train_flat(data: &[f32], dim: usize) -> Result<Sq8Codec> {
        if dim == 0 || data.is_empty() {
            return Err(TensorError::Empty("sq8 train"));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(TensorError::BadBuffer {
                expected: (data.len() / dim + 1) * dim,
                actual: data.len(),
            });
        }
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for row in data.chunks_exact(dim) {
            for (i, &x) in row.iter().enumerate() {
                if !x.is_finite() {
                    return Err(TensorError::Numerical("non-finite value in sq8 training sample"));
                }
                mins[i] = mins[i].min(x);
                maxs[i] = maxs[i].max(x);
            }
        }
        let widest = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| hi - lo)
            .fold(0.0f32, f32::max);
        // A degenerate (constant) sample still yields a usable codec: every
        // value encodes to code 0 and decodes exactly to its min.
        let step = if widest > 0.0 { widest / 255.0 } else { 1.0 };
        Ok(Sq8Codec { mins, step })
    }

    /// Dimensionality the codec was trained for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// The shared quantization step `s` (strictly positive).
    #[inline]
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Encodes one vector, appending `self.dim()` codes to `out`.
    /// Out-of-range values clamp; errors on length mismatch.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) -> Result<()> {
        let start = out.len();
        out.resize(start + self.dim(), 0);
        let r = self.encode_to_slice(v, &mut out[start..]);
        if r.is_err() {
            out.truncate(start);
        }
        r
    }

    /// Encodes one vector into a pre-sized output slice — the parallel
    /// arena-fill path, where each item owns a disjoint `&mut [u8]` chunk.
    /// Out-of-range values clamp; errors on input/output length mismatch.
    pub fn encode_to_slice(&self, v: &[f32], out: &mut [u8]) -> Result<()> {
        if v.len() != self.dim() || out.len() != self.dim() {
            return Err(TensorError::ShapeMismatch {
                op: "sq8_encode",
                lhs: (self.dim(), 1),
                rhs: (v.len(), out.len()),
            });
        }
        let inv = 1.0 / self.step;
        for ((o, &x), &lo) in out.iter_mut().zip(v).zip(&self.mins) {
            let c = ((x - lo) * inv + 0.5).floor();
            *o = c.clamp(0.0, 255.0) as u8;
        }
        Ok(())
    }

    /// Encodes one vector into a fresh code buffer.
    pub fn encode(&self, v: &[f32]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(v.len());
        self.encode_into(v, &mut out)?;
        Ok(out)
    }

    /// Decodes codes back to (approximate) `f32` values.
    pub fn decode(&self, codes: &[u8]) -> Result<Vec<f32>> {
        if codes.len() != self.dim() {
            return Err(TensorError::ShapeMismatch {
                op: "sq8_decode",
                lhs: (self.dim(), 1),
                rhs: (codes.len(), 1),
            });
        }
        Ok(codes
            .iter()
            .zip(&self.mins)
            .map(|(&c, &lo)| lo + self.step * f32::from(c))
            .collect())
    }

    /// Squared L2 distance between two *code* vectors, in `f32` units:
    /// exactly `‖decode(a) − decode(b)‖²` (up to float rounding), computed
    /// entirely on integer lanes and mapped back through `s²`.
    #[inline]
    pub fn l2_distance_sq(&self, a: &[u8], b: &[u8]) -> f32 {
        (self.step as f64 * self.step as f64 * l2_distance_sq_u8(a, b) as f64) as f32
    }

    /// Dot product of the *decoded* vectors:
    /// `Σ (lo_i + s·a_i)(lo_i + s·b_i)`, with the code-by-code product on
    /// integer lanes and the per-dimension offset terms folded in one
    /// fused sweep over the code sums.
    pub fn dot(&self, a: &[u8], b: &[u8]) -> f32 {
        debug_assert_eq!(a.len(), self.dim());
        debug_assert_eq!(b.len(), self.dim());
        let s = self.step as f64;
        let mut cross = 0.0f64; // Σ lo_i · (a_i + b_i)
        let mut base = 0.0f64; // Σ lo_i²
        let n = a.len().min(b.len()).min(self.mins.len());
        for i in 0..n {
            let lo = f64::from(self.mins[i]);
            cross += lo * f64::from(u16::from(a[i]) + u16::from(b[i]));
            base += lo * lo;
        }
        (s * s * dot_u8(a, b) as f64 + s * cross + base) as f32
    }
}

/// Raw squared L2 distance between two code vectors: `Σ (a_i − b_i)²` in
/// code space. Each [`FLUSH_EVERY`]-element chunk accumulates in `u32`
/// (`FLUSH_EVERY · 255² < 2³²`, so a chunk cannot overflow) and flushes
/// into the `u64` total. Integer addition is reassociable, so the plain
/// zipped reduction autovectorizes to widening 8→16-bit SIMD lanes —
/// unlike manually interleaved accumulator chains, whose strided lane
/// access the vectorizer often refuses. Length mismatch panics in debug;
/// in release the shorter length governs (callers validate at the index
/// layer, matching the `f32` kernels in [`crate::vector`]).
#[inline]
pub fn l2_distance_sq_u8(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut total = 0u64;
    let mut start = 0usize;
    while start < n {
        let end = (start + FLUSH_EVERY).min(n);
        let s: u32 = a[start..end]
            .iter()
            .zip(&b[start..end])
            .map(|(&x, &y)| {
                let d = i32::from(x) - i32::from(y);
                (d * d) as u32
            })
            .sum();
        total += u64::from(s);
        start = end;
    }
    total
}

/// Raw dot product of two code vectors: `Σ a_i · b_i` in code space, with
/// the same chunked reduction structure as [`l2_distance_sq_u8`].
#[inline]
pub fn dot_u8(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut total = 0u64;
    let mut start = 0usize;
    while start < n {
        let end = (start + FLUSH_EVERY).min(n);
        let s: u32 = a[start..end]
            .iter()
            .zip(&b[start..end])
            .map(|(&x, &y)| u32::from(x) * u32::from(y))
            .sum();
        total += u64::from(s);
        start = end;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use crate::vector;

    fn sample(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Pcg64::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal()).collect())
            .collect()
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let rows = sample(64, 16, 1);
        let codec = Sq8Codec::train(&rows).unwrap();
        let half = codec.step() / 2.0;
        for row in &rows {
            let decoded = codec.decode(&codec.encode(row).unwrap()).unwrap();
            for (x, y) in row.iter().zip(&decoded) {
                assert!((x - y).abs() <= half * 1.001, "{x} vs {y} (step {})", codec.step());
            }
        }
    }

    #[test]
    fn l2_kernel_matches_decoded_distance_exactly() {
        let rows = sample(32, 24, 2);
        let codec = Sq8Codec::train(&rows).unwrap();
        let ca = codec.encode(&rows[0]).unwrap();
        let cb = codec.encode(&rows[1]).unwrap();
        let da = codec.decode(&ca).unwrap();
        let db = codec.decode(&cb).unwrap();
        let via_kernel = codec.l2_distance_sq(&ca, &cb);
        let via_decode = vector::l2_distance_sq(&da, &db);
        assert!(
            (via_kernel - via_decode).abs() <= 1e-4 * via_decode.max(1.0),
            "{via_kernel} vs {via_decode}"
        );
    }

    #[test]
    fn dot_matches_decoded_dot() {
        let rows = sample(16, 33, 3);
        let codec = Sq8Codec::train(&rows).unwrap();
        let ca = codec.encode(&rows[2]).unwrap();
        let cb = codec.encode(&rows[3]).unwrap();
        let da = codec.decode(&ca).unwrap();
        let db = codec.decode(&cb).unwrap();
        let got = codec.dot(&ca, &cb);
        let want = vector::dot(&da, &db);
        assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0), "{got} vs {want}");
    }

    #[test]
    fn out_of_range_values_clamp() {
        let rows = vec![vec![0.0f32, 0.0], vec![1.0, 1.0]];
        let codec = Sq8Codec::train(&rows).unwrap();
        let codes = codec.encode(&[-5.0, 5.0]).unwrap();
        assert_eq!(codes, vec![0, 255]);
    }

    #[test]
    fn constant_sample_is_exact() {
        let rows = vec![vec![3.5f32, -1.0]; 4];
        let codec = Sq8Codec::train(&rows).unwrap();
        let codes = codec.encode(&rows[0]).unwrap();
        assert_eq!(codes, vec![0, 0]);
        assert_eq!(codec.decode(&codes).unwrap(), rows[0]);
        assert_eq!(codec.l2_distance_sq(&codes, &codes), 0.0);
    }

    #[test]
    fn training_validation() {
        assert!(Sq8Codec::train(&[]).is_err());
        assert!(Sq8Codec::train(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Sq8Codec::train_flat(&[1.0, 2.0, 3.0], 2).is_err());
        assert!(Sq8Codec::train_flat(&[], 4).is_err());
        assert!(Sq8Codec::train_flat(&[1.0, f32::NAN], 2).is_err());
        let codec = Sq8Codec::train_flat(&[0.0, 1.0, 2.0, 3.0], 2).unwrap();
        assert_eq!(codec.dim(), 2);
        assert!(codec.encode(&[1.0]).is_err());
        assert!(codec.decode(&[1]).is_err());
    }

    #[test]
    fn encode_to_slice_validates_lengths() {
        let codec = Sq8Codec::train_flat(&[0.0, 1.0, 2.0, 3.0], 2).unwrap();
        let mut out = [0u8; 2];
        assert!(codec.encode_to_slice(&[0.5, 1.5], &mut out).is_ok());
        assert!(codec.encode_to_slice(&[0.5], &mut out).is_err());
        let mut short = [0u8; 1];
        assert!(codec.encode_to_slice(&[0.5, 1.5], &mut short).is_err());
        // encode_into leaves the buffer untouched on error.
        let mut buf = vec![7u8];
        assert!(codec.encode_into(&[0.5], &mut buf).is_err());
        assert_eq!(buf, vec![7]);
    }

    #[test]
    fn raw_kernels_handle_long_vectors_without_overflow() {
        // 100k dims of max-distance codes: 100_000 · 255² needs > u32.
        let a = vec![0u8; 100_000];
        let b = vec![255u8; 100_000];
        assert_eq!(l2_distance_sq_u8(&a, &b), 100_000u64 * 255 * 255);
        assert_eq!(dot_u8(&b, &b), 100_000u64 * 255 * 255);
        assert_eq!(dot_u8(&a, &b), 0);
    }

    #[test]
    fn raw_kernels_match_naive_on_odd_lengths() {
        let mut rng = Pcg64::new(9);
        for &len in &[1usize, 3, 4, 7, 31, 130] {
            let a: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            let b: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            let naive_l2: u64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = i64::from(x) - i64::from(y);
                    (d * d) as u64
                })
                .sum();
            let naive_dot: u64 = a.iter().zip(&b).map(|(&x, &y)| u64::from(x) * u64::from(y)).sum();
            assert_eq!(l2_distance_sq_u8(&a, &b), naive_l2, "len {len}");
            assert_eq!(dot_u8(&a, &b), naive_dot, "len {len}");
        }
    }
}
