//! Descriptive statistics used by fingerprints, version heuristics and
//! experiment reporting.
//!
//! Weight-distribution moments (variance, skewness, kurtosis) are the raw
//! material of intrinsic fingerprints and of the fine-tuning direction
//! heuristic (Horwitz et al. observe kurtosis drift under fine-tuning);
//! rank correlations score attribution estimators against exact ground truth.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    crate::vector::mean(xs)
}

/// Population variance; 0 for slices with fewer than 2 elements.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = f64::from(mean(xs));
    let ss: f64 = xs.iter().map(|&x| (f64::from(x) - m).powi(2)).sum();
    (ss / xs.len() as f64) as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Skewness (third standardised moment); 0 when variance is 0.
pub fn skewness(xs: &[f32]) -> f32 {
    let m = f64::from(mean(xs));
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let var: f64 = xs.iter().map(|&x| (f64::from(x) - m).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return 0.0;
    }
    let m3: f64 = xs.iter().map(|&x| (f64::from(x) - m).powi(3)).sum::<f64>() / n;
    (m3 / var.powf(1.5)) as f32
}

/// Excess kurtosis (fourth standardised moment minus 3); 0 when variance is 0.
pub fn kurtosis(xs: &[f32]) -> f32 {
    let m = f64::from(mean(xs));
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let var: f64 = xs.iter().map(|&x| (f64::from(x) - m).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return 0.0;
    }
    let m4: f64 = xs.iter().map(|&x| (f64::from(x) - m).powi(4)).sum::<f64>() / n;
    (m4 / (var * var) - 3.0) as f32
}

/// Linear-interpolated quantile, `q ∈ [0, 1]`. Returns `None` when empty.
pub fn quantile(xs: &[f32], q: f32) -> Option<f32> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(f32::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q as f64 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5 quantile).
pub fn median(xs: &[f32]) -> Option<f32> {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient; `None` when either side is constant or
/// lengths differ / are < 2.
pub fn pearson(xs: &[f32], ys: &[f32]) -> Option<f32> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = f64::from(mean(xs));
    let my = f64::from(mean(ys));
    let (mut sxy, mut sxx, mut syy) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = f64::from(x) - mx;
        let dy = f64::from(y) - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())) as f32)
}

/// Fractional ranks with ties averaged (1-based ranks).
pub fn ranks(xs: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0f32; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank across the tie block (ranks are 1-based).
        let avg = (i + j) as f32 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation; `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f32], ys: &[f32]) -> Option<f32> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Equal-width histogram over `[lo, hi]` with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
pub fn histogram(xs: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    let mut counts = vec![0usize; bins];
    if hi <= lo {
        counts[0] = xs.len();
        return counts;
    }
    let width = (hi - lo) / bins as f32;
    for &x in xs {
        let b = (((x - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
}

/// Normalised histogram (sums to 1 unless the input is empty).
pub fn histogram_density(xs: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<f32> {
    let counts = histogram(xs, lo, hi, bins);
    let total = xs.len().max(1) as f32;
    counts.into_iter().map(|c| c as f32 / total).collect()
}

/// Summary of a weight distribution: the building block of intrinsic
/// fingerprints.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MomentSummary {
    /// Mean of the values.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Skewness.
    pub skew: f32,
    /// Excess kurtosis.
    pub kurtosis: f32,
    /// 5th percentile.
    pub q05: f32,
    /// Median.
    pub q50: f32,
    /// 95th percentile.
    pub q95: f32,
    /// L2 norm of the values.
    pub l2: f32,
}

impl MomentSummary {
    /// Computes the summary; an empty slice yields all zeros.
    pub fn of(xs: &[f32]) -> MomentSummary {
        MomentSummary {
            mean: mean(xs),
            std: std_dev(xs),
            skew: skewness(xs),
            kurtosis: kurtosis(xs),
            q05: quantile(xs, 0.05).unwrap_or(0.0),
            q50: quantile(xs, 0.50).unwrap_or(0.0),
            q95: quantile(xs, 0.95).unwrap_or(0.0),
            l2: crate::vector::l2_norm(xs),
        }
    }

    /// Flattens into an 8-element feature vector.
    pub fn to_features(&self) -> [f32; 8] {
        [
            self.mean,
            self.std,
            self.skew,
            self.kurtosis,
            self.q05,
            self.q50,
            self.q95,
            self.l2,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 4.0).abs() < 1e-5);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn skewness_sign() {
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right) > 0.5);
        let left = [-10.0, -2.0, -1.0, -1.0, -1.0];
        assert!(skewness(&left) < -0.5);
        assert_eq!(skewness(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn kurtosis_of_uniformish_negative() {
        let xs: Vec<f32> = (0..1000).map(|i| i as f32 / 999.0).collect();
        // Uniform distribution has excess kurtosis -1.2.
        assert!((kurtosis(&xs) + 1.2).abs() < 0.1);
        assert_eq!(kurtosis(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-6);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn pearson_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-6);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&xs, &[1.0]), None);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0]; // nonlinear but monotone
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let h = histogram(&[-1.0, 0.1, 0.5, 0.9, 2.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]);
        let d = histogram_density(&[0.25, 0.75], 0.0, 1.0, 2);
        assert_eq!(d, vec![0.5, 0.5]);
        let degenerate = histogram(&[1.0, 2.0], 5.0, 5.0, 3);
        assert_eq!(degenerate, vec![2, 0, 0]);
    }

    #[test]
    fn moment_summary_features() {
        let s = MomentSummary::of(&[1.0, 2.0, 3.0]);
        let f = s.to_features();
        assert!((f[0] - 2.0).abs() < 1e-6);
        assert_eq!(f.len(), 8);
        let empty = MomentSummary::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.l2, 0.0);
    }
}
