//! Machine-readable report rendering (the `--json` mode).
//!
//! The schema is stable and consumed by CI (`scripts/ci.sh` writes it as
//! a build artifact); extend it by *adding* fields, never renaming:
//!
//! ```json
//! {
//!   "schema": "mlake-lint/1",
//!   "findings": [
//!     { "pass": "…", "path": "…", "line": 1, "snippet": "…",
//!       "message": "…", "chain": ["…"], "baselined": false }
//!   ],
//!   "stale": [ { "pass": "…", "path": "…", "snippet": "…" } ],
//!   "summary": { "total": 0, "new": 0, "baselined": 0, "stale": 0 }
//! }
//! ```
//!
//! `findings` lists every finding (baselined or not) sorted by
//! (path, line, pass); `baselined` distinguishes accepted legacy debt
//! from run-failing findings. The renderer is hand-rolled — the lint
//! binary stays zero-dependency — and escapes per RFC 8259; the schema
//! round-trip test parses the output with the vendored `serde_json`
//! (dev-dependency only).

use crate::baseline::Entry;
use crate::passes::Finding;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "mlake-lint/1";

/// Escapes a string for a JSON literal (RFC 8259 §7).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

/// Renders the full report. `baselined` flags findings (parallel to
/// `findings`) that the `lint.allow` baseline covers.
pub fn render(findings: &[Finding], baselined: &[bool], stale: &[Entry]) -> String {
    debug_assert_eq!(findings.len(), baselined.len());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", esc(SCHEMA)));

    out.push_str("  \"findings\": [");
    for (i, (f, &b)) in findings.iter().zip(baselined).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"path\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"message\": \"{}\", \"chain\": {}, \"baselined\": {}}}",
            esc(f.pass),
            esc(&f.path),
            f.line,
            esc(&f.snippet),
            esc(&f.message),
            str_array(&f.chain),
            b
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"stale\": [");
    for (i, e) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"path\": \"{}\", \"snippet\": \"{}\"}}",
            esc(&e.pass),
            esc(&e.path),
            esc(&e.snippet)
        ));
    }
    if !stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    let baselined_n = baselined.iter().filter(|&&b| b).count();
    out.push_str(&format!(
        "  \"summary\": {{\"total\": {}, \"new\": {}, \"baselined\": {}, \"stale\": {}}}\n",
        findings.len(),
        findings.len() - baselined_n,
        baselined_n,
        stale.len()
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Content;

    fn finding(pass: &'static str, snippet: &str, chain: Vec<String>) -> Finding {
        Finding {
            pass,
            path: "crates/a/src/lib.rs".to_string(),
            line: 7,
            message: "a \"quoted\" message\twith controls".to_string(),
            snippet: snippet.to_string(),
            chain,
        }
    }

    fn get<'c>(c: &'c Content, key: &str) -> &'c Content {
        match c {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {key}")),
            other => panic!("expected map for key {key}, got {other:?}"),
        }
    }

    fn arr(c: &Content) -> &[Content] {
        match c {
            Content::Seq(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn s(c: &Content) -> &str {
        match c {
            Content::Str(v) => v,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn num(c: &Content) -> u64 {
        match c {
            Content::U64(v) => *v,
            Content::I64(v) => *v as u64,
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn report_round_trips_through_schema() {
        let findings = vec![
            finding("no-panic", "x.unwrap()", vec![]),
            finding(
                "transitive-panic",
                "pub fn ingest(",
                vec![
                    "mlake-core::ModelLake::ingest (crates/core/src/lake.rs:10)".to_string(),
                    "panic! at crates/nn/src/lib.rs:3".to_string(),
                ],
            ),
        ];
        let stale = vec![Entry {
            pass: "no-panic".to_string(),
            path: "crates/b/src/lib.rs".to_string(),
            snippet: "old.unwrap() // \\ backslash".to_string(),
        }];
        let text = render(&findings, &[true, false], &stale);

        let v = serde_json::parse(&text).expect("valid JSON");
        assert_eq!(s(get(&v, "schema")), SCHEMA);
        let fs = arr(get(&v, "findings"));
        assert_eq!(fs.len(), 2);
        assert_eq!(s(get(&fs[0], "pass")), "no-panic");
        assert_eq!(num(get(&fs[0], "line")), 7);
        assert_eq!(get(&fs[0], "baselined"), &Content::Bool(true));
        assert_eq!(
            s(get(&fs[0], "message")),
            "a \"quoted\" message\twith controls"
        );
        assert_eq!(get(&fs[1], "baselined"), &Content::Bool(false));
        let chain = arr(get(&fs[1], "chain"));
        assert_eq!(chain.len(), 2);
        assert!(s(&chain[0]).contains("ModelLake::ingest"));
        let stale_out = arr(get(&v, "stale"));
        assert_eq!(s(get(&stale_out[0], "snippet")), "old.unwrap() // \\ backslash");
        let summary = get(&v, "summary");
        assert_eq!(num(get(summary, "total")), 2);
        assert_eq!(num(get(summary, "new")), 1);
        assert_eq!(num(get(summary, "baselined")), 1);
        assert_eq!(num(get(summary, "stale")), 1);
    }

    #[test]
    fn empty_report_is_valid_json() {
        let text = render(&[], &[], &[]);
        let v = serde_json::parse(&text).expect("valid JSON");
        assert!(arr(get(&v, "findings")).is_empty());
        assert_eq!(num(get(get(&v, "summary"), "total")), 0);
    }
}
