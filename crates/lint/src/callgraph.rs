//! Conservative workspace call graph over [`crate::resolve::Workspace`].
//!
//! Call sites are recovered from token patterns and resolved with the
//! heuristics below (DESIGN.md §10). Unresolvable names (std methods,
//! macro internals) simply produce no edge.
//!
//! * `f(…)` — free functions named `f` in the caller's crate, then the
//!   `use`-imported crate, then the dependency closure;
//! * `Type::m(…)` / `Self::m(…)` — methods of that type (including
//!   trait-impl methods); `module::f(…)` falls back to free functions in
//!   the named or importing crate;
//! * `self.m(…)` — methods `m` of the enclosing impl type first, the
//!   by-name fallback otherwise;
//! * `expr.m(…)` — **over-approximate**: every inherent method named `m`
//!   in the caller's dependency closure. Trait-impl methods are excluded
//!   from this fallback so manual `Clone`/`Drop`/`Display` impls do not
//!   fan the graph out through every `.clone()` call.
//!
//! Lock primitives (`.lock()`, `.read()`, `.write()`, `try_*`) never
//! create call edges — they are acquisition sites, handled by
//! [`crate::wpa`].

use crate::lexer::{Tok, TokKind};
use crate::resolve::{ident_at, is_keyword, punct_at, FnId, Workspace};

/// Method names that are lock primitives, not calls.
const LOCK_PRIMITIVES: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Resolved callee.
    pub callee: FnId,
    /// 1-based source line of the call.
    pub line: usize,
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
}

/// Per-caller adjacency: `edges[caller]` lists its resolved call sites.
pub struct CallGraph {
    /// Outgoing call sites, indexed by [`FnId`].
    pub edges: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph for every non-test fn in the workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut edges: Vec<Vec<CallSite>> = vec![Vec::new(); ws.fns.len()];
        // Per-file sorted fn body ranges, to skip nested fn items when
        // walking an outer body.
        let mut bodies_per_file: Vec<Vec<(usize, usize, FnId)>> = vec![Vec::new(); ws.files.len()];
        for (id, f) in ws.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                bodies_per_file[f.file].push((open, close, id));
            }
        }
        for b in &mut bodies_per_file {
            b.sort_unstable();
        }

        for (id, f) in ws.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let file = &ws.files[f.file];
            let toks = &file.scanned.tokens;
            let mut i = open + 1;
            while i < close {
                // Skip bodies of fns nested inside this one, so their
                // calls are attributed to the nested item.
                if let Some(&(_, nc, _)) = bodies_per_file[f.file]
                    .iter()
                    .find(|&&(no, nc, nid)| no == i && nid != id && nc < close)
                {
                    i = nc + 1;
                    continue;
                }
                if let Some(site) = call_at(ws, f, i) {
                    for callee in site {
                        edges[id].push(CallSite {
                            callee,
                            line: toks[i].line,
                            tok: i,
                        });
                    }
                }
                i += 1;
            }
        }
        CallGraph { edges }
    }

    /// Call sites whose name token falls in `(lo, hi)` of the caller's
    /// token stream.
    pub fn sites_in_range(&self, caller: FnId, lo: usize, hi: usize) -> Vec<CallSite> {
        self.edges[caller]
            .iter()
            .copied()
            .filter(|s| s.tok > lo && s.tok < hi)
            .collect()
    }
}

/// Resolves a potential call with its name token at `i`, or `None`.
fn call_at(ws: &Workspace, caller: &crate::resolve::FnItem, i: usize) -> Option<Vec<FnId>> {
    let file = &ws.files[caller.file];
    let toks = &file.scanned.tokens;
    let name = ident_at(toks, i)?;
    // `name(` with `name` not a keyword; `name!(…)` macros fail the
    // paren-adjacency check, `fn name(` definitions the prev-token check.
    if !punct_at(toks, i + 1, '(')
        || is_keyword(name)
        || ident_at(toks, i.wrapping_sub(1)) == Some("fn")
    {
        return None;
    }
    let krate = &file.crate_name;

    if punct_at(toks, i.wrapping_sub(1), '.') {
        // Method call.
        if LOCK_PRIMITIVES.contains(&name) {
            return None;
        }
        // `…(…).m(…)`: the receiver is a call result — a guard deref, a
        // builder, a macro expansion. Its type is unknowable here and a
        // by-name fallback on such receivers manufactures false edges
        // (`OpenOptions::new().append(true)` is not `Wal::append`), so
        // these produce no edge. Workspace-relevant calls flow through
        // named receivers in practice.
        if punct_at(toks, i.wrapping_sub(2), ')') {
            return None;
        }
        let receiver = ident_at(toks, i.wrapping_sub(2));
        let receiver_is_plain_self =
            receiver == Some("self") && !punct_at(toks, i.wrapping_sub(3), '.');
        if receiver_is_plain_self {
            if let Some(ty) = &caller.impl_type {
                let on_type = ws.resolve_method_on(krate, ty, name);
                if !on_type.is_empty() {
                    return Some(on_type);
                }
            }
        } else if let Some(field) = receiver {
            if punct_at(toks, i.wrapping_sub(3), '.') {
                // `owner.field.m(…)`: type the receiver through the
                // declared field type. A field typed entirely by external
                // idents (Condvar, HashMap, …) produces no edge.
                let owner = if ident_at(toks, i.wrapping_sub(4)) == Some("self") {
                    caller.impl_type.as_deref()
                } else {
                    None
                };
                if let Some(tidents) = ws.field_type_idents(owner, field) {
                    let mut out = Vec::new();
                    for ty in tidents {
                        if ws.is_known_type(ty) {
                            out.extend(ws.resolve_method_on(krate, ty, name));
                        }
                    }
                    out.sort_unstable();
                    out.dedup();
                    return if out.is_empty() { None } else { Some(out) };
                }
            }
        }
        let by_name = ws.resolve_method_by_name(krate, name, count_args(toks, i + 1));
        return if by_name.is_empty() {
            None
        } else {
            Some(by_name)
        };
    }

    if punct_at(toks, i.wrapping_sub(1), ':') && punct_at(toks, i.wrapping_sub(2), ':') {
        // Path call `seg::name(…)`.
        let seg = ident_at(toks, i.wrapping_sub(3))?;
        if seg == "Self" {
            if let Some(ty) = &caller.impl_type {
                let on_type = ws.resolve_method_on(krate, ty, name);
                if !on_type.is_empty() {
                    return Some(on_type);
                }
            }
            return None;
        }
        // Known type: method. (Checked before imports so `Wal::open`
        // resolves as a method even when `Wal` is `use`d.)
        if ws.is_known_type(seg) {
            let on_type = ws.resolve_method_on(krate, seg, name);
            if !on_type.is_empty() {
                return Some(on_type);
            }
        }
        // Imported or literal crate path: free fn in that crate.
        if let Some(target) = file
            .imports
            .get(seg)
            .cloned()
            .or_else(|| seg.strip_prefix("mlake_").map(|r| r.replace('_', "-")))
        {
            let in_crate = ws.resolve_free_in(&target, name);
            if !in_crate.is_empty() {
                return Some(in_crate);
            }
        }
        // Sibling module in the same crate (`module::f(…)`).
        let same = ws.resolve_free_in(krate, name);
        return if same.is_empty() { None } else { Some(same) };
    }

    // Bare call `name(…)`. Same crate wins, then `use`d crate.
    let frees = ws.resolve_free(krate, name);
    if !frees.is_empty() {
        // When the name is explicitly imported, narrow to that crate.
        if let Some(target) = file.imports.get(name) {
            let narrowed: Vec<FnId> = frees
                .iter()
                .copied()
                .filter(|&id| &ws.files[ws.fns[id].file].crate_name == target)
                .collect();
            if !narrowed.is_empty() {
                return Some(narrowed);
            }
        }
        return Some(frees);
    }
    None
}

/// Counts the arguments of the call whose open paren is at `open`.
/// `None` when the list is unclosed or a closure pipe appears at the
/// top level (its parameter commas would be miscounted) — the caller
/// then matches by name alone.
fn count_args(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 1usize;
    let mut bracket = 0usize;
    let mut brace = 0usize;
    let mut segs = 0usize;
    let mut seg_tokens = 0usize;
    let mut j = open;
    loop {
        j += 1;
        match &toks.get(j)?.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket = bracket.saturating_sub(1),
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace = brace.saturating_sub(1),
            TokKind::Punct('|') if depth == 1 && bracket == 0 && brace == 0 => return None,
            TokKind::Punct(',') if depth == 1 && bracket == 0 && brace == 0 => {
                if seg_tokens > 0 {
                    segs += 1;
                }
                seg_tokens = 0;
                continue;
            }
            _ => {}
        }
        seg_tokens += 1;
    }
    if seg_tokens > 0 {
        segs += 1;
    }
    Some(segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::resolve::deps_all;

    fn graph(files: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let sources = files
            .iter()
            .map(|(p, s)| (p.to_string(), scan(s)))
            .collect();
        let crates: Vec<&str> = files
            .iter()
            .map(|(p, _)| Box::leak(crate::resolve::crate_of_path(p).into_boxed_str()) as &str)
            .collect();
        let ws = Workspace::build(sources, &deps_all(&crates));
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn fn_id(ws: &Workspace, name: &str) -> FnId {
        ws.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    fn callees(ws: &Workspace, cg: &CallGraph, name: &str) -> Vec<String> {
        let id = fn_id(ws, name);
        let mut out: Vec<String> = cg.edges[id]
            .iter()
            .map(|s| ws.fns[s.callee].qual_name())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn direct_and_path_calls_resolve() {
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper(); util::leaf(); }\nfn helper() {}\nmod util { pub fn leaf() {} }",
        )]);
        assert_eq!(callees(&ws, &cg, "top"), vec!["helper", "leaf"]);
    }

    #[test]
    fn self_method_calls_resolve_to_impl_type() {
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\nimpl A {\n    fn go(&self) { self.step(); }\n    fn step(&self) {}\n}\nimpl B {\n    fn step(&self) {}\n}",
        )]);
        assert_eq!(callees(&ws, &cg, "go"), vec!["A::step"]);
    }

    #[test]
    fn unknown_receiver_over_approximates_inherent_methods() {
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\nfn go(x: &A) { x.step(); }\nimpl A { fn step(&self) {} }\nimpl B { fn step(&self) {} }",
        )]);
        assert_eq!(callees(&ws, &cg, "go"), vec!["A::step", "B::step"]);
    }

    #[test]
    fn name_fallback_respects_arity() {
        // `cvar.wait(&mut s)` (one argument) must not resolve to a
        // zero-argument `Latch::wait`; a matching arity still does.
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Latch;\nimpl Latch { fn wait(&self) {} }\nfn go(cvar: &C, s: &mut S) { cvar.wait(s); }\nfn ok(l: &L) { l.wait(); }",
        )]);
        assert!(callees(&ws, &cg, "go").is_empty());
        assert_eq!(callees(&ws, &cg, "ok"), vec!["Latch::wait"]);
    }

    #[test]
    fn trait_impl_methods_do_not_join_name_fallback() {
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nimpl Clone for A { fn clone(&self) -> A { A } }\nfn go(x: &A) { x.clone(); }",
        )]);
        assert!(callees(&ws, &cg, "go").is_empty());
    }

    #[test]
    fn type_path_call_resolves_trait_impl_methods() {
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nimpl Iterator for A { fn next(&mut self) -> Option<u8> { None } }\nfn go(x: &mut A) { A::next(x); }",
        )]);
        assert_eq!(callees(&ws, &cg, "go"), vec!["A::next"]);
    }

    #[test]
    fn cross_crate_calls_respect_dep_closure() {
        let sources = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                scan("pub fn target() {}"),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                scan("pub fn target() {}"),
            ),
            (
                "crates/c/src/lib.rs".to_string(),
                scan("use mlake_a::target;\nfn go() { target(); }"),
            ),
        ];
        let mut deps = std::collections::HashMap::new();
        deps.insert("c".to_string(), vec!["a".to_string(), "b".to_string()]);
        let ws = Workspace::build(sources, &deps);
        let cg = CallGraph::build(&ws);
        let id = fn_id(&ws, "go");
        // The explicit import narrows `target` to crate a.
        assert_eq!(cg.edges[id].len(), 1);
        assert_eq!(
            ws.files[ws.fns[cg.edges[id][0].callee].file].crate_name,
            "a"
        );
    }

    #[test]
    fn lock_primitives_and_macros_produce_no_edges() {
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "struct A;\nimpl A { fn lock(&self) {} fn read(&self) {} }\nfn go(x: &A) { x.lock(); x.read(); println!(\"hi\"); }",
        )]);
        assert!(callees(&ws, &cg, "go").is_empty());
    }

    #[test]
    fn test_fns_have_no_edges() {
        let (ws, cg) = graph(&[(
            "crates/a/src/lib.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::prod(); }\n}",
        )]);
        let id = fn_id(&ws, "t");
        assert!(cg.edges[id].is_empty());
    }
}
