//! A lightweight Rust scanner: just enough lexing for the lint passes.
//!
//! The scanner separates a source file into *code tokens* (identifiers,
//! string literals, punctuation) and *comments*, each tagged with a
//! 1-based line number. It is not a full Rust lexer — it has no keyword
//! table and no number semantics — but it gets the hard parts right for
//! static analysis: nested block comments, raw strings (so fixture code
//! embedded in `r#"…"#` literals is never mistaken for real code),
//! escapes, and the lifetime-vs-char-literal ambiguity.

/// One code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Token payload.
    pub kind: TokKind,
}

/// Code token payload. Numbers, lifetimes and whitespace are consumed but
/// not emitted — no pass needs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Any string/byte-string literal (normal or raw); contents dropped.
    StrLit,
    /// Single punctuation character.
    Punct(char),
}

/// One comment (line or block), with its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: usize,
    /// Comment text without delimiters.
    pub text: String,
}

/// A scanned source file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Raw source lines (index 0 = line 1).
    pub lines: Vec<String>,
    /// Code tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
    /// Line ranges (inclusive) of `#[cfg(test)]` items: each region spans
    /// from the attribute to the closing brace of the item it annotates
    /// (usually `mod tests { … }`). A region with no following brace block
    /// extends to the end of the file. Regions need not be last in the
    /// file — code after a test module is still library code.
    pub test_regions: Vec<(usize, usize)>,
}

impl Scanned {
    /// The trimmed source text of a 1-based line (empty when out of range).
    pub fn snippet(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// True when `line` falls inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// True when any comment overlapping lines `[lo, hi]` contains `needle`.
    pub fn comment_near(&self, lo: usize, hi: usize, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= hi && c.text.contains(needle))
    }
}

/// Scans `src` into tokens and comments.
pub fn scan(src: &str) -> Scanned {
    let mut out = Scanned {
        lines: src.lines().map(str::to_string).collect(),
        ..Scanned::default()
    };
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1usize;

    // Advances past `k` chars, tracking newlines.
    macro_rules! bump {
        ($k:expr) => {{
            for _ in 0..$k {
                if i < n {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < n {
        let c = b[i];
        // ---- whitespace --------------------------------------------------
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // ---- comments ----------------------------------------------------
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = line;
            let mut text = String::new();
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            out.comments.push(Comment {
                line: start,
                end_line: start,
                text,
            });
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    bump!(2);
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    text.push_str("*/");
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i]);
                    bump!(1);
                }
            }
            out.comments.push(Comment {
                line: start,
                end_line: line,
                text,
            });
            continue;
        }
        // ---- identifiers (and raw/byte string prefixes) ------------------
        if c.is_alphabetic() || c == '_' {
            let start = line;
            let mut ident = String::new();
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                ident.push(b[i]);
                i += 1;
            }
            // Raw strings: r"…", r#"…"#, br"…", br#"…"# — skip verbatim.
            let is_raw_prefix = matches!(ident.as_str(), "r" | "br" | "rb" | "cr");
            if is_raw_prefix && i < n && (b[i] == '"' || b[i] == '#') {
                let mut hashes = 0usize;
                while i < n && b[i] == '#' {
                    hashes += 1;
                    bump!(1);
                }
                if i < n && b[i] == '"' {
                    bump!(1);
                    // Scan until `"` followed by `hashes` hash marks.
                    'raw: while i < n {
                        if b[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                bump!(1 + hashes);
                                break 'raw;
                            }
                        }
                        bump!(1);
                    }
                    out.tokens.push(Tok {
                        line: start,
                        kind: TokKind::StrLit,
                    });
                    continue;
                }
                // `r#ident` raw identifier or stray hashes: emit what we
                // consumed as punctuation-free best effort and move on.
                out.tokens.push(Tok {
                    line: start,
                    kind: TokKind::Ident(ident),
                });
                continue;
            }
            // Byte strings / byte chars: `b"…"`, `b'…'` — fall through to
            // the string/char scanners below on the next loop iteration.
            out.tokens.push(Tok {
                line: start,
                kind: TokKind::Ident(ident),
            });
            continue;
        }
        // ---- string literals --------------------------------------------
        if c == '"' {
            let start = line;
            bump!(1);
            while i < n {
                if b[i] == '\\' {
                    bump!(2);
                } else if b[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            out.tokens.push(Tok {
                line: start,
                kind: TokKind::StrLit,
            });
            continue;
        }
        // ---- lifetimes vs char literals ---------------------------------
        if c == '\'' {
            // `'a` / `'static` (lifetime or loop label): quote followed by
            // ident-start NOT closed by another quote right after.
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                let closes = i + 2 < n && b[i + 2] == '\'';
                if !closes {
                    bump!(2);
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    continue;
                }
            }
            // Char literal: 'x', '\n', '\u{1F4A9}'.
            bump!(1);
            while i < n {
                if b[i] == '\\' {
                    bump!(2);
                } else if b[i] == '\'' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            continue;
        }
        // ---- numbers (consumed, not emitted) ----------------------------
        if c.is_ascii_digit() {
            while i < n
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            continue;
        }
        // ---- punctuation -------------------------------------------------
        out.tokens.push(Tok {
            line,
            kind: TokKind::Punct(c),
        });
        bump!(1);
    }

    out.test_regions = find_test_regions(&out.tokens, line);
    out
}

/// Index of the token closing the group opened at `open` (which must be
/// `open_ch`), honouring nesting. `None` when unbalanced.
fn matching_close(tokens: &[Tok], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokKind::Punct(p) if *p == open_ch => depth += 1,
            TokKind::Punct(p) if *p == close_ch => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Line ranges of every `#[cfg(test)]`-annotated item. Each range runs from
/// the attribute to the close of the item's brace block (skipping any
/// further attributes in between); items with no brace block before a `;`
/// get just the attribute's own lines, and an unterminated item extends to
/// `last_line` (the file's final line).
fn find_test_regions(tokens: &[Tok], last_line: usize) -> Vec<(usize, usize)> {
    let pat: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    let mut regions = Vec::new();
    let mut idx = 0usize;
    'outer: while idx < tokens.len() {
        let t = &tokens[idx];
        if !matches!(&t.kind, TokKind::Punct('#')) {
            idx += 1;
            continue;
        }
        for (k, want) in pat.iter().enumerate() {
            let Some(tok) = tokens.get(idx + k) else {
                idx += 1;
                continue 'outer;
            };
            let matches = match &tok.kind {
                TokKind::Ident(s) => s == want,
                TokKind::Punct(p) => want.len() == 1 && want.starts_with(*p),
                TokKind::StrLit => false,
            };
            if !matches {
                idx += 1;
                continue 'outer;
            }
        }
        // Matched `#[cfg(test)]` at idx; walk past any further attributes,
        // then to the item's opening brace (or a `;` for brace-less items).
        let start_line = t.line;
        let mut j = idx + pat.len();
        while punct_at(tokens, j, '#') && punct_at(tokens, j + 1, '[') {
            match matching_close(tokens, j + 1, '[', ']') {
                Some(close) => j = close + 1,
                None => break,
            }
        }
        let mut open = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokKind::Punct('{') => {
                    open = Some(j);
                    break;
                }
                TokKind::Punct(';') => break,
                _ => j += 1,
            }
        }
        let end_line = match open {
            Some(o) => match matching_close(tokens, o, '{', '}') {
                Some(close) => tokens[close].line,
                None => last_line,
            },
            None => tokens.get(j).map(|t| t.line).unwrap_or(last_line),
        };
        regions.push((start_line, end_line.max(start_line)));
        idx = match open {
            Some(o) => matching_close(tokens, o, '{', '}').map(|c| c + 1).unwrap_or(tokens.len()),
            None => j + 1,
        };
    }
    regions
}

fn punct_at(tokens: &[Tok], idx: usize, c: char) -> bool {
    matches!(tokens.get(idx), Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &Scanned) -> Vec<&str> {
        s.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let s = scan("// unsafe unwrap\nlet x = \"panic!()\"; /* todo!() */\n");
        assert!(!idents(&s).contains(&"unsafe"));
        assert!(!idents(&s).contains(&"panic"));
        assert!(!idents(&s).contains(&"todo"));
        assert_eq!(s.comments.len(), 2);
        assert!(s.comments[0].text.contains("unsafe unwrap"));
    }

    #[test]
    fn raw_strings_skipped_verbatim() {
        let s = scan("let f = r#\"fn bad() { x.unwrap() }\"#;\nlet y = 1;");
        assert!(!idents(&s).contains(&"unwrap"));
        assert!(idents(&s).contains(&"y"));
        // The raw string still produced one StrLit token.
        assert!(s.tokens.iter().any(|t| t.kind == TokKind::StrLit));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        let ids = idents(&s);
        assert!(ids.contains(&"str"));
        assert!(ids.contains(&"char"));
        assert!(!ids.contains(&"a"));
        assert!(!ids.contains(&"x") || ids.iter().filter(|i| **i == "x").count() == 1);
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ fn real() {}");
        assert!(idents(&s).contains(&"real"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\n";
        let s = scan(src);
        assert_eq!(s.test_regions, vec![(2, 5)]);
        assert!(!s.in_test_region(1));
        assert!(s.in_test_region(2));
        assert!(s.in_test_region(4));
        assert!(s.in_test_region(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let s = scan("#[cfg(not(test))]\nfn lib() {}\n");
        assert!(s.test_regions.is_empty());
    }

    #[test]
    fn cfg_test_region_not_last_does_not_exempt_trailing_code() {
        // A test module in the *middle* of a file must not swallow the
        // library code after it — the call graph depends on this.
        let src = "fn before() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let s = scan(src);
        assert_eq!(s.test_regions, vec![(2, 5)]);
        assert!(!s.in_test_region(1));
        assert!(s.in_test_region(4));
        assert!(!s.in_test_region(6));
    }

    #[test]
    fn multiple_cfg_test_regions_and_stacked_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod a {\n fn t() {}\n}\nfn lib() {}\n#[cfg(test)]\nmod b {}\n";
        let s = scan(src);
        assert_eq!(s.test_regions, vec![(1, 5), (7, 8)]);
        assert!(!s.in_test_region(6));
    }

    #[test]
    fn cfg_test_on_braceless_item_covers_only_the_item() {
        // `#[cfg(test)] use …;` has no brace block; the region must not
        // swallow the rest of the file.
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib(x: Option<u8>) -> u8 { 0 }\n";
        let s = scan(src);
        assert_eq!(s.test_regions.len(), 1);
        assert!(!s.in_test_region(3));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_literals_not_code() {
        let s = scan("let a = b\"unwrap()\"; let c = b'x'; let d = 1;");
        assert!(!idents(&s).contains(&"unwrap"));
        assert!(idents(&s).contains(&"d"));
        // The byte-string prefix ident is consumed separately from the
        // literal; the literal itself never leaks code tokens.
        assert!(s.tokens.iter().any(|t| t.kind == TokKind::StrLit));
    }

    #[test]
    fn raw_byte_strings_with_hash_fences_skip_embedded_quotes() {
        let s = scan("let x = br##\"inner \"# quote panic!()\"##;\nlet y = 2;");
        assert!(!idents(&s).contains(&"panic"));
        assert!(idents(&s).contains(&"y"));
    }

    #[test]
    fn raw_string_fence_count_must_match() {
        // `r#"…"#` terminates only on `"#`, not on a bare quote.
        let s = scan("let x = r#\"a \" b\"#; let tail = 3;");
        assert!(idents(&s).contains(&"tail"));
        assert_eq!(
            s.tokens.iter().filter(|t| t.kind == TokKind::StrLit).count(),
            1
        );
    }

    #[test]
    fn lifetime_before_char_literal_disambiguates() {
        // `'a` is a lifetime; `'a'` is a char literal. Both in one line.
        let s = scan("fn f<'a>(x: &'a u8) -> char { 'a' }\nfn g() -> u8 { 1 }");
        assert!(idents(&s).contains(&"g"));
        assert!(idents(&s).contains(&"char"));
        // The lifetime ident never becomes a code identifier token.
        assert!(!idents(&s).contains(&"a"));
    }

    #[test]
    fn static_lifetime_and_loop_labels_are_consumed() {
        let s = scan("fn f(s: &'static str) { 'outer: loop { break 'outer; } }");
        assert!(!idents(&s).contains(&"static"));
        assert!(!idents(&s).contains(&"outer"));
        assert!(idents(&s).contains(&"loop"));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nline string\";\nlet b = 1;";
        let s = scan(src);
        let b_tok = s
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(i) if i == "b"))
            .expect("b token");
        assert_eq!(b_tok.line, 3);
    }
}
