//! A lightweight Rust scanner: just enough lexing for the lint passes.
//!
//! The scanner separates a source file into *code tokens* (identifiers,
//! string literals, punctuation) and *comments*, each tagged with a
//! 1-based line number. It is not a full Rust lexer — it has no keyword
//! table and no number semantics — but it gets the hard parts right for
//! static analysis: nested block comments, raw strings (so fixture code
//! embedded in `r#"…"#` literals is never mistaken for real code),
//! escapes, and the lifetime-vs-char-literal ambiguity.

/// One code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Token payload.
    pub kind: TokKind,
}

/// Code token payload. Numbers, lifetimes and whitespace are consumed but
/// not emitted — no pass needs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Any string/byte-string literal (normal or raw); contents dropped.
    StrLit,
    /// Single punctuation character.
    Punct(char),
}

/// One comment (line or block), with its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: usize,
    /// Comment text without delimiters.
    pub text: String,
}

/// A scanned source file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Raw source lines (index 0 = line 1).
    pub lines: Vec<String>,
    /// Code tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
    /// Line of the first `#[cfg(test)]` attribute, if any. By workspace
    /// convention the unit-test module sits at the end of the file, so
    /// everything from this line on is treated as test code.
    pub cfg_test_start: Option<usize>,
}

impl Scanned {
    /// The trimmed source text of a 1-based line (empty when out of range).
    pub fn snippet(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// True when `line` falls inside the trailing `#[cfg(test)]` region.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.cfg_test_start.is_some_and(|start| line >= start)
    }

    /// True when any comment overlapping lines `[lo, hi]` contains `needle`.
    pub fn comment_near(&self, lo: usize, hi: usize, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= hi && c.text.contains(needle))
    }
}

/// Scans `src` into tokens and comments.
pub fn scan(src: &str) -> Scanned {
    let mut out = Scanned {
        lines: src.lines().map(str::to_string).collect(),
        ..Scanned::default()
    };
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1usize;

    // Advances past `k` chars, tracking newlines.
    macro_rules! bump {
        ($k:expr) => {{
            for _ in 0..$k {
                if i < n {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < n {
        let c = b[i];
        // ---- whitespace --------------------------------------------------
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // ---- comments ----------------------------------------------------
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = line;
            let mut text = String::new();
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            out.comments.push(Comment {
                line: start,
                end_line: start,
                text,
            });
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    bump!(2);
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    text.push_str("*/");
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i]);
                    bump!(1);
                }
            }
            out.comments.push(Comment {
                line: start,
                end_line: line,
                text,
            });
            continue;
        }
        // ---- identifiers (and raw/byte string prefixes) ------------------
        if c.is_alphabetic() || c == '_' {
            let start = line;
            let mut ident = String::new();
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                ident.push(b[i]);
                i += 1;
            }
            // Raw strings: r"…", r#"…"#, br"…", br#"…"# — skip verbatim.
            let is_raw_prefix = matches!(ident.as_str(), "r" | "br" | "rb" | "cr");
            if is_raw_prefix && i < n && (b[i] == '"' || b[i] == '#') {
                let mut hashes = 0usize;
                while i < n && b[i] == '#' {
                    hashes += 1;
                    bump!(1);
                }
                if i < n && b[i] == '"' {
                    bump!(1);
                    // Scan until `"` followed by `hashes` hash marks.
                    'raw: while i < n {
                        if b[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                bump!(1 + hashes);
                                break 'raw;
                            }
                        }
                        bump!(1);
                    }
                    out.tokens.push(Tok {
                        line: start,
                        kind: TokKind::StrLit,
                    });
                    continue;
                }
                // `r#ident` raw identifier or stray hashes: emit what we
                // consumed as punctuation-free best effort and move on.
                out.tokens.push(Tok {
                    line: start,
                    kind: TokKind::Ident(ident),
                });
                continue;
            }
            // Byte strings / byte chars: `b"…"`, `b'…'` — fall through to
            // the string/char scanners below on the next loop iteration.
            out.tokens.push(Tok {
                line: start,
                kind: TokKind::Ident(ident),
            });
            continue;
        }
        // ---- string literals --------------------------------------------
        if c == '"' {
            let start = line;
            bump!(1);
            while i < n {
                if b[i] == '\\' {
                    bump!(2);
                } else if b[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            out.tokens.push(Tok {
                line: start,
                kind: TokKind::StrLit,
            });
            continue;
        }
        // ---- lifetimes vs char literals ---------------------------------
        if c == '\'' {
            // `'a` / `'static` (lifetime or loop label): quote followed by
            // ident-start NOT closed by another quote right after.
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                let closes = i + 2 < n && b[i + 2] == '\'';
                if !closes {
                    bump!(2);
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    continue;
                }
            }
            // Char literal: 'x', '\n', '\u{1F4A9}'.
            bump!(1);
            while i < n {
                if b[i] == '\\' {
                    bump!(2);
                } else if b[i] == '\'' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            continue;
        }
        // ---- numbers (consumed, not emitted) ----------------------------
        if c.is_ascii_digit() {
            while i < n
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            continue;
        }
        // ---- punctuation -------------------------------------------------
        out.tokens.push(Tok {
            line,
            kind: TokKind::Punct(c),
        });
        bump!(1);
    }

    out.cfg_test_start = find_cfg_test(&out.tokens);
    out
}

/// Line of the first `#[cfg(test)]` attribute in the token stream.
fn find_cfg_test(tokens: &[Tok]) -> Option<usize> {
    let pat: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    'outer: for (idx, t) in tokens.iter().enumerate() {
        if !matches!(&t.kind, TokKind::Punct('#')) {
            continue;
        }
        for (k, want) in pat.iter().enumerate() {
            let Some(tok) = tokens.get(idx + k) else {
                continue 'outer;
            };
            let matches = match &tok.kind {
                TokKind::Ident(s) => s == want,
                TokKind::Punct(p) => want.len() == 1 && want.starts_with(*p),
                TokKind::StrLit => false,
            };
            if !matches {
                continue 'outer;
            }
        }
        return Some(t.line);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &Scanned) -> Vec<&str> {
        s.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let s = scan("// unsafe unwrap\nlet x = \"panic!()\"; /* todo!() */\n");
        assert!(!idents(&s).contains(&"unsafe"));
        assert!(!idents(&s).contains(&"panic"));
        assert!(!idents(&s).contains(&"todo"));
        assert_eq!(s.comments.len(), 2);
        assert!(s.comments[0].text.contains("unsafe unwrap"));
    }

    #[test]
    fn raw_strings_skipped_verbatim() {
        let s = scan("let f = r#\"fn bad() { x.unwrap() }\"#;\nlet y = 1;");
        assert!(!idents(&s).contains(&"unwrap"));
        assert!(idents(&s).contains(&"y"));
        // The raw string still produced one StrLit token.
        assert!(s.tokens.iter().any(|t| t.kind == TokKind::StrLit));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        let ids = idents(&s);
        assert!(ids.contains(&"str"));
        assert!(ids.contains(&"char"));
        assert!(!ids.contains(&"a"));
        assert!(!ids.contains(&"x") || ids.iter().filter(|i| **i == "x").count() == 1);
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ fn real() {}");
        assert!(idents(&s).contains(&"real"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\n";
        let s = scan(src);
        assert_eq!(s.cfg_test_start, Some(2));
        assert!(!s.in_test_region(1));
        assert!(s.in_test_region(2));
        assert!(s.in_test_region(4));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let s = scan("#[cfg(not(test))]\nfn lib() {}\n");
        assert_eq!(s.cfg_test_start, None);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nline string\";\nlet b = 1;";
        let s = scan(src);
        let b_tok = s
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(i) if i == "b"))
            .expect("b token");
        assert_eq!(b_tok.line, 3);
    }
}
