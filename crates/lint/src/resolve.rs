//! The resolution layer: from per-file token streams to an approximate
//! whole-workspace symbol table (DESIGN.md §10).
//!
//! This is deliberately *not* a Rust front-end. It recovers just enough
//! structure for conservative whole-program analysis:
//!
//! * a **crate map** — `crates/<name>/…` → crate `<name>`, `src/…` → the
//!   umbrella `root` crate — plus the crate **dependency graph** parsed
//!   from each `Cargo.toml` (`mlake-x` entries only; the vendored shims
//!   are opaque);
//! * **fn items** — free functions, inherent methods (`impl Type`), trait
//!   methods (`impl Trait for Type`, `trait T { fn … }`), each with its
//!   body token range, visibility, and return-type idents;
//! * per-file **imports** — `use mlake_x::…` leaf-name → crate mapping
//!   used to resolve bare cross-crate calls.
//!
//! Approximations (also documented in DESIGN.md §10): generics and trait
//! dispatch are resolved by *name*, not by type inference; function
//! pointers, closures passed across functions, and macro-generated code
//! are invisible; `use …::*` glob imports are ignored. The call graph
//! built on top ([`crate::callgraph`]) inherits these properties and is
//! over-approximate for method names and under-approximate for dynamic
//! dispatch.

use crate::lexer::{Scanned, Tok, TokKind};
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// One scanned source file plus its crate attribution.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate key: the directory under `crates/`, or `root` for `src/`.
    pub crate_name: String,
    /// Token/comment streams.
    pub scanned: Scanned,
    /// Leaf import name → crate key (from `use` items).
    pub imports: HashMap<String, String>,
    /// `{`-token-index → matching `}`-token-index, for block scoping.
    pub blocks: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Token index of the `}` closing the innermost block containing
    /// token `idx` (the whole file when `idx` is at the top level).
    pub fn enclosing_block_end(&self, idx: usize) -> usize {
        let mut best_open = 0usize;
        let mut best_close = usize::MAX;
        let mut found = false;
        for &(open, close) in &self.blocks {
            if open < idx && idx < close && (!found || open > best_open) {
                best_open = open;
                best_close = close;
                found = true;
            }
        }
        if found {
            best_close
        } else {
            self.scanned.tokens.len()
        }
    }
}

/// Identifier of a [`FnItem`] in [`Workspace::fns`].
pub type FnId = usize;

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// True when declared inside `impl Trait for Type` or a `trait`
    /// block (resolved only via an explicit receiver type, never by bare
    /// name — see module docs).
    pub trait_impl: bool,
    /// `pub fn` (strict adjacency, matching the facade-span pass).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the body braces `(open, close)`, `None` for
    /// body-less trait signatures.
    pub body: Option<(usize, usize)>,
    /// Identifier tokens of the return type (guard-detection heuristic).
    pub ret_idents: Vec<String>,
    /// Parameter count excluding the receiver, `None` when the list
    /// could not be delimited. Used to narrow the by-name fallback.
    pub arity: Option<usize>,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` or plain `name`, for chain rendering.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The resolved workspace: files, fn items, symbol indexes, crate deps.
pub struct Workspace {
    /// Scanned files.
    pub files: Vec<SourceFile>,
    /// All fn items.
    pub fns: Vec<FnItem>,
    /// Transitive dependency closure per crate key (includes the crate
    /// itself).
    pub dep_closure: HashMap<String, HashSet<String>>,
    free_by_name: HashMap<String, Vec<FnId>>,
    methods_by_name: HashMap<String, Vec<FnId>>,
    methods_by_type: HashMap<(String, String), Vec<FnId>>,
    /// `(struct, field)` → idents of the declared field type, from struct
    /// (and enum-variant) bodies. Used to type `self.field.m(…)`
    /// receivers.
    field_types: HashMap<(String, String), Vec<String>>,
    /// field name → union of every declared type for that name, for
    /// receivers whose owner is a local variable.
    fields_by_name: HashMap<String, Vec<String>>,
}

/// Crate key for a workspace-relative path.
pub fn crate_of_path(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// Maps a `use`d crate identifier (`mlake_wal`, `crate`, …) to a crate
/// key, or `None` for external crates.
fn crate_key_of_ident(ident: &str, own: &str) -> Option<String> {
    if let Some(rest) = ident.strip_prefix("mlake_") {
        return Some(rest.replace('_', "-"));
    }
    if ident == "crate" || ident == "self" || ident == "super" {
        return Some(own.to_string());
    }
    None
}

/// Parses the direct `mlake-*` dependencies of every `crates/*/Cargo.toml`
/// under `base`. The umbrella `root` crate depends on everything.
pub fn crate_deps_from_manifests(base: &Path) -> std::io::Result<HashMap<String, Vec<String>>> {
    let mut deps: HashMap<String, Vec<String>> = HashMap::new();
    let crates_dir = base.join("crates");
    let mut names = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let dir = entry.path();
            let manifest = dir.join("Cargo.toml");
            let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(&manifest) else {
                continue;
            };
            names.push(name.clone());
            deps.insert(name.clone(), parse_manifest_deps(&text));
        }
    }
    deps.insert("root".to_string(), names);
    Ok(deps)
}

/// Extracts `mlake-x` keys from the `[dependencies]` section of one
/// manifest (dev-dependencies only affect test code, which is exempt).
fn parse_manifest_deps(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(rest) = line.strip_prefix("mlake-") {
            if let Some(end) = rest.find(['.', ' ', '=']) {
                out.push(rest[..end].to_string());
            }
        }
    }
    out
}

/// A dependency map where every crate depends on every other — the
/// over-approximate default for in-memory fixtures with no manifests.
pub fn deps_all(crates: &[&str]) -> HashMap<String, Vec<String>> {
    crates
        .iter()
        .map(|c| {
            (
                c.to_string(),
                crates.iter().map(|d| d.to_string()).collect(),
            )
        })
        .collect()
}

/// Keywords never treated as call names.
const KEYWORDS: [&str; 22] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "where", "let", "mut", "ref", "move", "unsafe", "fn", "impl", "use", "mod", "pub",
];

pub(crate) fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

pub(crate) fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some(Tok {
            kind: TokKind::Ident(s),
            ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c)
}

/// `(open, close)` pairs for every brace block in `toks`.
fn brace_pairs(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => stack.push(i),
            TokKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    pairs.push((open, i));
                }
            }
            _ => {}
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Matching `}` for the `{` at `open`, using the precomputed pairs.
fn close_of(pairs: &[(usize, usize)], open: usize) -> Option<usize> {
    pairs
        .binary_search_by_key(&open, |&(o, _)| o)
        .ok()
        .map(|k| pairs[k].1)
}

impl Workspace {
    /// Builds the symbol table over `files` (path, source) with the given
    /// direct-dependency map (see [`crate_deps_from_manifests`] /
    /// [`deps_all`]).
    pub fn build(
        sources: Vec<(String, Scanned)>,
        direct_deps: &HashMap<String, Vec<String>>,
    ) -> Workspace {
        let mut files = Vec::new();
        for (path, scanned) in sources {
            let crate_name = crate_of_path(&path);
            let blocks = brace_pairs(&scanned.tokens);
            let imports = parse_imports(&scanned.tokens, &crate_name);
            files.push(SourceFile {
                path,
                crate_name,
                scanned,
                imports,
                blocks,
            });
        }

        let mut fns = Vec::new();
        let mut field_types: HashMap<(String, String), Vec<String>> = HashMap::new();
        let mut fields_by_name: HashMap<String, Vec<String>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            extract_items(fi, file, &mut fns);
            extract_fields(file, &mut field_types, &mut fields_by_name);
        }

        let mut free_by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut methods_by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut methods_by_type: HashMap<(String, String), Vec<FnId>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            match &f.impl_type {
                Some(t) => {
                    methods_by_type
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    if !f.trait_impl {
                        methods_by_name.entry(f.name.clone()).or_default().push(id);
                    }
                }
                None => free_by_name.entry(f.name.clone()).or_default().push(id),
            }
        }

        // Transitive dependency closure (includes self).
        let mut dep_closure: HashMap<String, HashSet<String>> = HashMap::new();
        let crates: HashSet<String> = files.iter().map(|f| f.crate_name.clone()).collect();
        for c in &crates {
            let mut seen: HashSet<String> = HashSet::new();
            let mut stack = vec![c.clone()];
            while let Some(k) = stack.pop() {
                if !seen.insert(k.clone()) {
                    continue;
                }
                if let Some(ds) = direct_deps.get(&k) {
                    for d in ds {
                        stack.push(d.clone());
                    }
                }
            }
            dep_closure.insert(c.clone(), seen);
        }

        Workspace {
            files,
            fns,
            dep_closure,
            free_by_name,
            methods_by_name,
            methods_by_type,
            field_types,
            fields_by_name,
        }
    }

    /// Idents of the declared type of `field` — on `owner` when known
    /// (`self.field`), else the union over every struct declaring a field
    /// with that name. `None` when no such field is declared anywhere.
    pub fn field_type_idents(&self, owner: Option<&str>, field: &str) -> Option<&[String]> {
        if let Some(o) = owner {
            if let Some(t) = self.field_types.get(&(o.to_string(), field.to_string())) {
                return Some(t);
            }
        }
        self.fields_by_name.get(field).map(Vec::as_slice)
    }

    /// True when `target` is in `from`'s dependency closure (or the
    /// closure is unknown, the over-approximate default).
    fn crate_visible(&self, from: &str, target: &str) -> bool {
        match self.dep_closure.get(from) {
            Some(set) => set.contains(target),
            None => true,
        }
    }

    /// Free functions named `name` visible from crate `from`; same-crate
    /// definitions win outright when they exist (Rust would require a
    /// `use` to shadow them anyway).
    pub fn resolve_free(&self, from: &str, name: &str) -> Vec<FnId> {
        let Some(cands) = self.free_by_name.get(name) else {
            return Vec::new();
        };
        let same: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|&id| self.files[self.fns[id].file].crate_name == from)
            .collect();
        if !same.is_empty() {
            return same;
        }
        cands
            .iter()
            .copied()
            .filter(|&id| self.crate_visible(from, &self.files[self.fns[id].file].crate_name))
            .collect()
    }

    /// Free functions named `name` in a specific crate.
    pub fn resolve_free_in(&self, krate: &str, name: &str) -> Vec<FnId> {
        self.free_by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| self.files[self.fns[id].file].crate_name == krate)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Methods `Type::name` (any crate in `from`'s closure).
    pub fn resolve_method_on(&self, from: &str, ty: &str, name: &str) -> Vec<FnId> {
        self.methods_by_type
            .get(&(ty.to_string(), name.to_string()))
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| self.crate_visible(from, &self.files[self.fns[id].file].crate_name))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All inherent methods named `name` visible from crate `from` — the
    /// over-approximate fallback when the receiver type is unknown.
    /// `args` (the call-site argument count, when delimitable) filters
    /// out candidates of a different arity, so `cvar.wait(&mut s)` does
    /// not resolve to a zero-argument `Latch::wait`.
    pub fn resolve_method_by_name(&self, from: &str, name: &str, args: Option<usize>) -> Vec<FnId> {
        self.methods_by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| self.crate_visible(from, &self.files[self.fns[id].file].crate_name))
                    .filter(|&id| match (args, self.fns[id].arity) {
                        (Some(a), Some(b)) => a == b,
                        _ => true,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True when `name` is a known impl-target type.
    pub fn is_known_type(&self, name: &str) -> bool {
        self.methods_by_type.keys().any(|(t, _)| t == name)
    }
}

/// Collects `use` leaf-name → crate-key mappings from one token stream.
fn parse_imports(toks: &[Tok], own_crate: &str) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("use") {
            i += 1;
            continue;
        }
        // First path segment decides the crate.
        let Some(first) = ident_at(toks, i + 1) else {
            i += 1;
            continue;
        };
        let Some(krate) = crate_key_of_ident(first, own_crate) else {
            // External crate (std, serde, …) — skip to the `;`.
            while i < toks.len() && !punct_at(toks, i, ';') {
                i += 1;
            }
            continue;
        };
        // Collect leaf idents until `;`: last ident of each `::` path,
        // every ident inside `{…}` groups, and `as` aliases.
        let mut j = i + 1;
        let mut prev_ident: Option<String> = None;
        while j < toks.len() && !punct_at(toks, j, ';') {
            match &toks[j].kind {
                TokKind::Ident(s) if s == "as" => {
                    if let Some(alias) = ident_at(toks, j + 1) {
                        out.insert(alias.to_string(), krate.clone());
                        prev_ident = None;
                        j += 2;
                        continue;
                    }
                }
                TokKind::Ident(s) => prev_ident = Some(s.clone()),
                TokKind::Punct(',') | TokKind::Punct('}') => {
                    if let Some(p) = prev_ident.take() {
                        out.insert(p, krate.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(p) = prev_ident.take() {
            out.insert(p, krate.clone());
        }
        i = j + 1;
    }
    out
}

/// Extracts fn items from one file, attributing methods to their
/// enclosing `impl`/`trait` block.
fn extract_items(fi: usize, file: &SourceFile, fns: &mut Vec<FnItem>) {
    let toks = &file.scanned.tokens;
    let pairs = &file.blocks;
    // Stack of (type name, trait_impl, close token idx).
    let mut ctx: Vec<(String, bool, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(_, _, close)) = ctx.last() {
            if i > close {
                ctx.pop();
            } else {
                break;
            }
        }
        match ident_at(toks, i) {
            Some("impl") => {
                if let Some((ty, trait_impl, open)) = parse_impl_header(toks, i) {
                    if let Some(close) = close_of(pairs, open) {
                        ctx.push((ty, trait_impl, close));
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            Some("trait") => {
                if let Some(name) = ident_at(toks, i + 1) {
                    let name = name.to_string();
                    let mut j = i + 2;
                    while j < toks.len() && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
                        j += 1;
                    }
                    if punct_at(toks, j, '{') {
                        if let Some(close) = close_of(pairs, j) {
                            // Trait-block methods are interface decls:
                            // excluded from by-name fallback like trait
                            // impls (dispatch isn't resolvable by name).
                            ctx.push((name, true, close));
                            i = j + 1;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            Some("fn") => {
                let Some(name) = ident_at(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let line = toks[i].line;
                let is_pub = i > 0 && ident_at(toks, i - 1) == Some("pub");
                let (body, ret_idents, next) = parse_fn_signature(toks, pairs, i + 2);
                fns.push(FnItem {
                    file: fi,
                    name: name.to_string(),
                    impl_type: ctx.last().map(|(t, _, _)| t.clone()),
                    trait_impl: ctx.last().is_some_and(|&(_, ti, _)| ti),
                    is_pub,
                    line,
                    body,
                    ret_idents,
                    arity: count_params(toks, i + 2),
                    in_test: file.scanned.in_test_region(line),
                });
                // Do NOT skip the body: nested fn/impl items inside it
                // must still be recorded. The call graph handles nesting.
                i = next.min(body.map(|(o, _)| o + 1).unwrap_or(next));
            }
            _ => i += 1,
        }
    }
}

/// Collects `field: Type` declarations from `struct`/`enum` bodies into
/// the field-type maps. Type idents are everything up to the `,` (or
/// closing brace) at field depth, so `Box<dyn VFile>` yields
/// `[Box, dyn, VFile]`.
fn extract_fields(
    file: &SourceFile,
    field_types: &mut HashMap<(String, String), Vec<String>>,
    fields_by_name: &mut HashMap<String, Vec<String>>,
) {
    let toks = &file.scanned.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let kw = ident_at(toks, i);
        if kw != Some("struct") && kw != Some("enum") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        // Find the body `{` (skipping generics / where clauses); tuple
        // structs and unit structs end at `;` with no named fields.
        let mut j = i + 2;
        let mut angle = 0usize;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('{') if angle == 0 => break,
                TokKind::Punct(';') if angle == 0 => break,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if !punct_at(toks, j.wrapping_sub(1), '-') => {
                    angle = angle.saturating_sub(1)
                }
                _ => {}
            }
            j += 1;
        }
        if !punct_at(toks, j, '{') {
            i = j + 1;
            continue;
        }
        let close = close_of(&file.blocks, j).unwrap_or(toks.len());
        // Walk `field : Type ,` items (also matches enum-variant fields —
        // harmless extra entries). Nested braces (enum variants) are
        // walked through; angle depth guards the commas.
        let mut k = j + 1;
        while k < close {
            let is_field = ident_at(toks, k).is_some()
                && punct_at(toks, k + 1, ':')
                && !punct_at(toks, k + 2, ':')
                && !punct_at(toks, k.wrapping_sub(1), ':');
            if !is_field {
                k += 1;
                continue;
            }
            let field = ident_at(toks, k).unwrap_or_default().to_string();
            let mut idents = Vec::new();
            let mut t = k + 2;
            let mut depth = 0usize;
            while t < close {
                match &toks[t].kind {
                    TokKind::Punct(',') if depth == 0 => break,
                    TokKind::Punct('{') | TokKind::Punct('}') if depth == 0 => break,
                    TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('>') if punct_at(toks, t.wrapping_sub(1), '-') => {}
                    TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => {
                        depth = depth.saturating_sub(1)
                    }
                    TokKind::Ident(s) => idents.push(s.clone()),
                    _ => {}
                }
                t += 1;
            }
            if !idents.is_empty() {
                field_types
                    .entry((name.clone(), field.clone()))
                    .or_insert_with(|| idents.clone());
                fields_by_name.entry(field).or_default().extend(idents);
            }
            k = t + 1;
        }
        i = close + 1;
    }
}

/// Parses an `impl` header starting at the `impl` token. Returns
/// `(type name, is_trait_impl, '{' token index)`.
fn parse_impl_header(toks: &[Tok], at: usize) -> Option<(String, bool, usize)> {
    let mut j = at + 1;
    // Skip generic parameters `<…>` (nesting-aware; `->` cannot appear
    // in an impl header).
    if punct_at(toks, j, '<') {
        let mut depth = 0usize;
        while j < toks.len() {
            if punct_at(toks, j, '<') {
                depth += 1;
            } else if punct_at(toks, j, '>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Walk segments until `{`; remember the last ident before generics,
    // and whether a `for` splits trait from type.
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut depth = 0usize;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') if depth == 0 => {
                let ty = if saw_for { after_for } else { last_ident };
                return ty.map(|t| (t, saw_for, j));
            }
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => depth = depth.saturating_sub(1),
            TokKind::Ident(s) if depth == 0 => {
                if s == "for" {
                    saw_for = true;
                } else if s == "where" {
                    // Type name is fixed by now; keep scanning to `{`.
                } else if saw_for {
                    // Later path segments (after `::`) replace earlier ones,
                    // so `crate::module::Type` resolves to `Type`.
                    if after_for.is_none() || punct_at(toks, j - 1, ':') {
                        after_for = Some(s.clone());
                    }
                } else {
                    last_ident = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Counts the parameters of the fn whose tokens resume at `j` (just
/// after the name: optional generics, then the parameter list). The
/// receiver (`self` anywhere in the first parameter, covering `&self`,
/// `mut self` and `self: Arc<Self>`) is not counted. `None` when the
/// list cannot be delimited.
fn count_params(toks: &[Tok], mut j: usize) -> Option<usize> {
    // Skip generics. `Fn(…)` bounds keep their parens inside the angle
    // depth; `->` inside a bound must not close an angle.
    let mut angle = 0usize;
    loop {
        match &toks.get(j)?.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !punct_at(toks, j.wrapping_sub(1), '-') => {
                angle = angle.saturating_sub(1)
            }
            TokKind::Punct('(') if angle == 0 => break,
            TokKind::Punct('{') | TokKind::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    let mut depth = 1usize; // parens, starting inside the list
    let mut angle = 0usize;
    let mut bracket = 0usize;
    let mut brace = 0usize;
    let mut segs = 0usize;
    let mut seg_tokens = 0usize;
    let mut first_has_self = false;
    loop {
        j += 1;
        let t = toks.get(j)?;
        match &t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket = bracket.saturating_sub(1),
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace = brace.saturating_sub(1),
            TokKind::Punct('<') if depth == 1 && bracket == 0 && brace == 0 => angle += 1,
            TokKind::Punct('>')
                if depth == 1
                    && bracket == 0
                    && brace == 0
                    && !punct_at(toks, j.wrapping_sub(1), '-') =>
            {
                angle = angle.saturating_sub(1)
            }
            TokKind::Punct(',') if depth == 1 && angle == 0 && bracket == 0 && brace == 0 => {
                if seg_tokens > 0 {
                    segs += 1;
                }
                seg_tokens = 0;
                continue;
            }
            TokKind::Ident(s) if segs == 0 && s == "self" => first_has_self = true,
            _ => {}
        }
        seg_tokens += 1;
    }
    if seg_tokens > 0 {
        segs += 1;
    }
    Some(segs.saturating_sub(first_has_self as usize))
}

/// Parses a fn signature from just after the name. Returns the body
/// brace range (if any), the return-type idents, and the token index to
/// resume scanning from.
fn parse_fn_signature(
    toks: &[Tok],
    pairs: &[(usize, usize)],
    mut j: usize,
) -> (Option<(usize, usize)>, Vec<String>, usize) {
    let mut ret_idents = Vec::new();
    let mut in_ret = false;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren = paren.saturating_sub(1),
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket = bracket.saturating_sub(1),
            TokKind::Punct('>') if punct_at(toks, j.wrapping_sub(1), '-') => in_ret = true,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                let close = close_of(pairs, j).unwrap_or(toks.len().saturating_sub(1));
                return (Some((j, close)), ret_idents, close + 1);
            }
            TokKind::Punct(';') if paren == 0 && bracket == 0 => {
                return (None, ret_idents, j + 1);
            }
            TokKind::Ident(s) if in_ret => {
                if s == "where" {
                    in_ret = false;
                } else {
                    ret_idents.push(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, ret_idents, toks.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources = files
            .iter()
            .map(|(p, s)| (p.to_string(), scan(s)))
            .collect();
        let crates: Vec<&str> = files
            .iter()
            .map(|(p, _)| {
                let c = crate_of_path(p);
                Box::leak(c.into_boxed_str()) as &str
            })
            .collect();
        Workspace::build(sources, &deps_all(&crates))
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of_path("crates/core/src/lake.rs"), "core");
        assert_eq!(crate_of_path("src/lib.rs"), "root");
        assert_eq!(crate_of_path("crates/wal/src/vfs.rs"), "wal");
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn free_one() {}\nimpl Widget {\n    pub fn method_one(&self) {}\n    fn private_m(&self) {}\n}\nimpl Drop for Widget {\n    fn drop(&mut self) {}\n}",
        )]);
        assert_eq!(w.resolve_free("a", "free_one").len(), 1);
        assert_eq!(w.resolve_method_on("a", "Widget", "method_one").len(), 1);
        assert_eq!(w.resolve_method_by_name("a", "private_m", None).len(), 1);
        // Trait-impl methods resolve by explicit type, never by bare name.
        assert_eq!(w.resolve_method_on("a", "Widget", "drop").len(), 1);
        assert!(w.resolve_method_by_name("a", "drop", None).is_empty());
        assert!(w.is_known_type("Widget"));
    }

    #[test]
    fn impl_headers_with_generics_and_paths() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl<'a, T: Clone> Holder<T> {\n    fn held(&self) {}\n}\nimpl std::fmt::Display for Holder<u8> {\n    fn fmt(&self, f: &mut F) -> R { todo!() }\n}",
        )]);
        assert_eq!(w.resolve_method_on("a", "Holder", "held").len(), 1);
        assert_eq!(w.resolve_method_on("a", "Holder", "fmt").len(), 1);
    }

    #[test]
    fn dep_closure_limits_cross_crate_resolution() {
        let sources = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                scan("pub fn shared_name() {}"),
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                scan("pub fn shared_name() {}"),
            ),
            ("crates/c/src/lib.rs".to_string(), scan("pub fn f() {}")),
        ];
        let mut deps = HashMap::new();
        deps.insert("c".to_string(), vec!["a".to_string()]);
        let w = Workspace::build(sources, &deps);
        // c sees a's fn (dependency) but not b's (unrelated crate).
        let ids = w.resolve_free("c", "shared_name");
        assert_eq!(ids.len(), 1);
        assert_eq!(w.files[w.fns[ids[0]].file].crate_name, "a");
    }

    #[test]
    fn same_crate_free_fn_shadows_dependencies() {
        let sources = vec![
            ("crates/a/src/lib.rs".to_string(), scan("pub fn f() {}")),
            ("crates/b/src/lib.rs".to_string(), scan("pub fn f() {}")),
        ];
        let mut deps = HashMap::new();
        deps.insert("b".to_string(), vec!["a".to_string()]);
        let w = Workspace::build(sources, &deps);
        let ids = w.resolve_free("b", "f");
        assert_eq!(ids.len(), 1);
        assert_eq!(w.files[w.fns[ids[0]].file].crate_name, "b");
    }

    #[test]
    fn imports_map_leaf_names_to_crates() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "use mlake_wal::{Wal, Recovery};\nuse mlake_obs as obs;\nuse std::collections::HashMap;\nfn f() {}",
        )]);
        let file = &w.files[0];
        assert_eq!(file.imports.get("Wal").map(String::as_str), Some("wal"));
        assert_eq!(
            file.imports.get("Recovery").map(String::as_str),
            Some("wal")
        );
        assert_eq!(file.imports.get("obs").map(String::as_str), Some("obs"));
        assert!(!file.imports.contains_key("HashMap"));
    }

    #[test]
    fn test_region_fns_are_excluded_from_resolution() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        assert_eq!(w.resolve_free("a", "lib_fn").len(), 1);
        assert!(w.resolve_free("a", "helper").is_empty());
    }

    #[test]
    fn fn_body_ranges_and_return_idents() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn with_sig(x: [u8; 4]) -> MutexGuard<'_, u8> { inner() }\nfn inner() {}",
        )]);
        let f = w
            .fns
            .iter()
            .find(|f| f.name == "with_sig")
            .expect("with_sig item");
        assert!(f.body.is_some());
        assert!(f.ret_idents.iter().any(|r| r == "MutexGuard"));
    }

    #[test]
    fn manifest_dep_parsing() {
        let deps = parse_manifest_deps(
            "[package]\nname = \"mlake-core\"\n[dependencies]\nmlake-obs.workspace = true\nmlake-wal = { path = \"../wal\" }\nserde.workspace = true\n[dev-dependencies]\nmlake-par.workspace = true\n",
        );
        assert_eq!(deps, vec!["obs".to_string(), "wal".to_string()]);
    }
}
