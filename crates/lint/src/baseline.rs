//! The `lint.allow` burn-down baseline.
//!
//! Legacy violations live in a checked-in file so the workspace lints
//! clean today while the debt burns down incrementally: removing code
//! that matches an entry leaves the entry *stale* (reported, never fatal),
//! while any finding **not** in the baseline fails the run. Entries are
//! line-number-free — `pass<TAB>path<TAB>trimmed source line` — so
//! unrelated edits shifting lines never invalidate the file. Identical
//! snippets in one file are matched as a multiset (N entries allow N
//! occurrences).

use crate::passes::Finding;
use std::collections::HashMap;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Entry {
    /// Pass id (e.g. `no-panic`).
    pub pass: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Trimmed source line of the allowed violation.
    pub snippet: String,
}

/// Parsed `lint.allow` contents.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Multiset of allowed violations.
    counts: HashMap<Entry, usize>,
}

/// Result of matching findings against a baseline.
#[derive(Debug, Default)]
pub struct MatchReport {
    /// Findings not covered by the baseline — these fail the run.
    pub new_findings: Vec<Finding>,
    /// Baseline entries with no matching finding — burn-down progress;
    /// reported so they can be pruned, but never fatal.
    pub stale: Vec<Entry>,
}

impl Baseline {
    /// Parses `lint.allow` text. Blank lines and `#` comments are ignored;
    /// malformed lines are returned as errors with their 1-based line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut b = Baseline::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(pass), Some(path), Some(snippet)) if !pass.is_empty() => {
                    *b.counts
                        .entry(Entry {
                            pass: pass.to_string(),
                            path: path.to_string(),
                            snippet: snippet.trim().to_string(),
                        })
                        .or_insert(0) += 1;
                }
                _ => {
                    return Err(format!(
                        "lint.allow line {}: expected `pass<TAB>path<TAB>snippet`, got: {line}",
                        i + 1
                    ))
                }
            }
        }
        Ok(b)
    }

    /// Number of allowed violations (multiset size).
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// True when the baseline allows nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Splits `findings` into new (unbaselined) findings and stale entries.
    pub fn matches(&self, findings: &[Finding]) -> MatchReport {
        let mut remaining = self.counts.clone();
        let mut report = MatchReport::default();
        for f in findings {
            let key = Entry {
                pass: f.pass.to_string(),
                path: f.path.clone(),
                snippet: f.snippet.clone(),
            };
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => report.new_findings.push(f.clone()),
            }
        }
        let mut stale: Vec<Entry> = remaining
            .into_iter()
            .flat_map(|(e, n)| std::iter::repeat_n(e, n))
            .collect();
        stale.sort_by(|a, b| (&a.path, &a.pass, &a.snippet).cmp(&(&b.path, &b.pass, &b.snippet)));
        report.stale = stale;
        report
    }

    /// Renders `findings` as baseline text (for `--update-baseline`).
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| format!("{}\t{}\t{}", f.pass, f.path, f.snippet))
            .collect();
        lines.sort();
        let mut out = String::from(
            "# mlake-lint burn-down baseline (DESIGN.md §10).\n\
             # Format: pass<TAB>path<TAB>trimmed source line. Entries are legacy\n\
             # violations; do NOT add new ones — fix the code instead. Delete\n\
             # entries as the code they cover is fixed (stale entries are\n\
             # reported by every lint run).\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            pass,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn parse_and_match_roundtrip() {
        let text = "# comment\n\nno-panic\tcrates/a/src/lib.rs\tx.unwrap()\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.len(), 1);
        let covered = [finding("no-panic", "crates/a/src/lib.rs", "x.unwrap()")];
        let r = b.matches(&covered);
        assert!(r.new_findings.is_empty());
        assert!(r.stale.is_empty());
    }

    #[test]
    fn uncovered_finding_is_new_and_unused_entry_is_stale() {
        let b = Baseline::parse("no-panic\tcrates/a/src/lib.rs\told_line()\n").expect("parses");
        let r = b.matches(&[finding("no-panic", "crates/a/src/lib.rs", "fresh.unwrap()")]);
        assert_eq!(r.new_findings.len(), 1);
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].snippet, "old_line()");
    }

    #[test]
    fn multiset_counts_duplicates() {
        let text = "no-panic\tf.rs\tx.unwrap()\nno-panic\tf.rs\tx.unwrap()\n";
        let b = Baseline::parse(text).expect("parses");
        let two = [
            finding("no-panic", "f.rs", "x.unwrap()"),
            finding("no-panic", "f.rs", "x.unwrap()"),
        ];
        assert!(b.matches(&two).new_findings.is_empty());
        let three = [
            finding("no-panic", "f.rs", "x.unwrap()"),
            finding("no-panic", "f.rs", "x.unwrap()"),
            finding("no-panic", "f.rs", "x.unwrap()"),
        ];
        assert_eq!(b.matches(&three).new_findings.len(), 1);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(Baseline::parse("no tabs here\n").is_err());
    }

    #[test]
    fn render_is_parseable_and_sorted() {
        let fs = [
            finding("no-panic", "b.rs", "y.unwrap()"),
            finding("no-panic", "a.rs", "x.unwrap()"),
        ];
        let text = Baseline::render(&fs);
        let b = Baseline::parse(&text).expect("own output parses");
        assert_eq!(b.len(), 2);
        assert!(b.matches(&fs).new_findings.is_empty());
    }
}
