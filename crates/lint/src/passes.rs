//! The per-file lint passes (DESIGN.md §10).
//!
//! Every pass walks the token/comment streams of one [`Scanned`] file and
//! emits [`Finding`]s. Paths are workspace-relative with forward slashes;
//! path-scoped rules (which crates a pass applies to) live here so the
//! whole policy is in one place.
//!
//! | id             | rule                                                        |
//! |----------------|-------------------------------------------------------------|
//! | `unsafe-safety`| every `unsafe` block/fn/impl carries a `// SAFETY:` comment |
//! | `no-panic`     | no `unwrap()/expect("…")/panic!/todo!/unimplemented!` in lib |
//! | `no-wallclock` | no `Instant`/`SystemTime` outside `mlake-obs`, `bench` and `mlake-load` |
//! | `facade-span`  | every `pub fn` on a facade type (`ModelLake` in core; `Wal`/`Recovery` in wal; `Api` in server) opens an obs span |
//! | `lock-order`   | `.lock()`/`.read()`/`.write()` in index/par/wal/server carries a `// lock-order: N` comment |
//!
//! Test code is exempt everywhere: files under `tests/`, `benches/` or
//! `examples/`, the `mlake-bench` crate, and the trailing `#[cfg(test)]`
//! region of library files.

use crate::lexer::{Scanned, Tok, TokKind};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Pass identifier (stable; used in the baseline file).
    pub pass: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
    /// Trimmed source line, the baseline matching key.
    pub snippet: String,
    /// Whole-program call chain leading to the finding (empty for
    /// per-file passes): rendered `crate::Type::fn (path:line)` hops
    /// ending at the offending site.
    pub chain: Vec<String>,
}

impl Finding {
    fn new(pass: &'static str, path: &str, s: &Scanned, line: usize, message: String) -> Finding {
        Finding {
            pass,
            path: path.to_string(),
            line,
            message,
            snippet: s.snippet(line).to_string(),
            chain: Vec::new(),
        }
    }
}

/// Lines of leading comment tolerated between an annotation comment and the
/// construct it annotates.
const SAFETY_WINDOW: usize = 4;
pub(crate) const ANNOTATION_WINDOW: usize = 3;
pub(crate) const LOCK_WINDOW: usize = 2;

/// True for paths whose whole file is test/bench/example or binary
/// scaffolding. `src/bin/` holds ad-hoc driver binaries (panicking on bad
/// CLI args is their error reporting), in any crate and at the root.
pub fn exempt_path(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.contains("/src/bin/")
        || path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.starts_with("src/bin/")
}

fn ident(t: Option<&Tok>) -> Option<&str> {
    match t {
        Some(Tok {
            kind: TokKind::Ident(s),
            ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(t: Option<&Tok>, c: char) -> bool {
    matches!(t, Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c)
}

fn strlit(t: Option<&Tok>) -> bool {
    matches!(
        t,
        Some(Tok {
            kind: TokKind::StrLit,
            ..
        })
    )
}

/// Runs every pass applicable to `path` over one scanned file.
pub fn run_all(path: &str, s: &Scanned) -> Vec<Finding> {
    let mut out = Vec::new();
    if exempt_path(path) {
        return out;
    }
    unsafe_safety(path, s, &mut out);
    no_panic(path, s, &mut out);
    no_wallclock(path, s, &mut out);
    facade_span(path, s, &mut out);
    lock_order(path, s, &mut out);
    out
}

/// `unsafe-safety`: every `unsafe` keyword (block, fn, impl, trait) must
/// have a comment containing `SAFETY:` on its line or within
/// [`SAFETY_WINDOW`] lines above.
fn unsafe_safety(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    for t in &s.tokens {
        if ident(Some(t)) != Some("unsafe") || s.in_test_region(t.line) {
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_WINDOW);
        if !s.comment_near(lo, t.line, "SAFETY:") {
            out.push(Finding::new(
                "unsafe-safety",
                path,
                s,
                t.line,
                "`unsafe` without a `// SAFETY:` comment justifying the invariant".into(),
            ));
        }
    }
}

/// `no-panic`: no `.unwrap()`, `.expect("…")`, `panic!`, `todo!` or
/// `unimplemented!` in non-test library code. `.expect(` with a
/// non-string-literal argument is not flagged (e.g. a parser method named
/// `expect`).
fn no_panic(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    let toks = &s.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident(Some(t)) else { continue };
        if s.in_test_region(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|k| toks.get(k));
        let flagged = match name {
            "unwrap" => {
                punct(prev, '.') && punct(toks.get(i + 1), '(') && punct(toks.get(i + 2), ')')
            }
            "expect" => {
                punct(prev, '.') && punct(toks.get(i + 1), '(') && strlit(toks.get(i + 2))
            }
            "panic" | "todo" | "unimplemented" => punct(toks.get(i + 1), '!'),
            _ => false,
        };
        if flagged {
            let what = match name {
                "unwrap" => ".unwrap()".to_string(),
                "expect" => ".expect(\"…\")".to_string(),
                m => format!("{m}!"),
            };
            out.push(Finding::new(
                "no-panic",
                path,
                s,
                t.line,
                format!("{what} in non-test library code — return an error or move to lint.allow"),
            ));
        }
    }
}

/// `no-wallclock`: `Instant`/`SystemTime` only inside `mlake-obs` (the
/// process's one physical clock), the bench crate, and `mlake-load`
/// (whose whole purpose is pacing and timing live HTTP traffic).
/// Everything else must stay deterministic.
fn no_wallclock(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    if path.starts_with("crates/obs/") || path.starts_with("crates/load/") {
        return;
    }
    for t in &s.tokens {
        let Some(name) = ident(Some(t)) else { continue };
        if (name == "Instant" || name == "SystemTime") && !s.in_test_region(t.line) {
            out.push(Finding::new(
                "no-wallclock",
                path,
                s,
                t.line,
                format!("`{name}` outside mlake-obs/bench breaks the determinism guard — time through mlake-obs instead"),
            ));
        }
    }
}

/// The facade types whose public methods must open obs spans (and, in the
/// whole-program [`crate::wpa`] passes, must not reach panic sites), per
/// crate. Adding a crate here is how a new subsystem opts into both rules.
pub(crate) fn facade_targets(path: &str) -> &'static [&'static str] {
    if path.starts_with("crates/core/") {
        &["ModelLake"]
    } else if path.starts_with("crates/wal/") {
        &["Wal", "Recovery"]
    } else if path.starts_with("crates/server/") {
        &["Api"]
    } else if path.starts_with("crates/text/") {
        &["TextIndex"]
    } else {
        &[]
    }
}

/// `facade-span`: inside `impl <FacadeType>` blocks (see
/// [`facade_targets`]), every `pub fn` body must call `…span(` or the
/// signature must be annotated `// lint: no-span` within
/// [`ANNOTATION_WINDOW`] lines above.
fn facade_span(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    let targets = facade_targets(path);
    if targets.is_empty() {
        return;
    }
    let toks = &s.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // Find `impl <Target>` (not `impl Trait for <Target>`).
        if ident(toks.get(i)) == Some("impl")
            && ident(toks.get(i + 1)).is_some_and(|name| targets.contains(&name))
            && ident(toks.get(i + 2)) != Some("for")
        {
            // Advance to the impl block's opening brace and remember where
            // the block ends.
            let mut j = i + 2;
            while j < toks.len() && !punct(toks.get(j), '{') {
                j += 1;
            }
            let block_end = match matching_brace(toks, j) {
                Some(e) => e,
                None => toks.len(),
            };
            scan_impl_block(path, s, j + 1, block_end, out);
            i = block_end + 1;
            continue;
        }
        i += 1;
    }
}

/// Index of the `}` matching the `{` at `open` (tokens), if any.
fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Checks every top-level `pub fn` in the token range `[start, end)`.
fn scan_impl_block(path: &str, s: &Scanned, start: usize, end: usize, out: &mut Vec<Finding>) {
    let toks = &s.tokens;
    let mut i = start;
    while i < end {
        if ident(toks.get(i)) == Some("pub") && ident(toks.get(i + 1)) == Some("fn") {
            let fn_line = toks[i].line;
            let fn_name = ident(toks.get(i + 2)).unwrap_or("?").to_string();
            // Body = first brace block after the signature.
            let mut j = i + 2;
            while j < end && !punct(toks.get(j), '{') {
                j += 1;
            }
            let body_end = matching_brace(toks, j).unwrap_or(end).min(end);
            let opens_span = (j..body_end).any(|k| {
                ident(toks.get(k)) == Some("span") && punct(toks.get(k + 1), '(')
            });
            let annotated = s.comment_near(
                fn_line.saturating_sub(ANNOTATION_WINDOW),
                fn_line,
                "lint: no-span",
            );
            if !opens_span && !annotated && !s.in_test_region(fn_line) {
                out.push(Finding::new(
                    "facade-span",
                    path,
                    s,
                    fn_line,
                    format!(
                        "facade method `{fn_name}` opens no obs span and is not annotated `// lint: no-span`"
                    ),
                ));
            }
            i = body_end + 1;
            continue;
        }
        i += 1;
    }
}

/// `lock-order`: in `mlake-index`/`mlake-par`/`mlake-wal`, every blocking
/// acquisition — `.lock()` on a `Mutex`, `.read()`/`.write()` on an
/// `RwLock` — must carry a `// lock-order: N` comment (same line or up to
/// [`LOCK_WINDOW`] lines above) stating its rank in the DESIGN.md §10 lock
/// hierarchy. Matching is purely syntactic (any zero-argument
/// `.read()`/`.write()` call), which is the point: a reader that *looks*
/// like a lock acquisition should be annotated or renamed.
fn lock_order(path: &str, s: &Scanned, out: &mut Vec<Finding>) {
    if !(path.starts_with("crates/index/")
        || path.starts_with("crates/par/")
        || path.starts_with("crates/wal/")
        || path.starts_with("crates/server/")
        || path.starts_with("crates/core/src/store"))
    {
        return;
    }
    let toks = &s.tokens;
    for (i, t) in toks.iter().enumerate() {
        let method = match ident(Some(t)) {
            Some(m @ ("lock" | "read" | "write")) => m,
            _ => continue,
        };
        if s.in_test_region(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|k| toks.get(k));
        if !(punct(prev, '.') && punct(toks.get(i + 1), '(') && punct(toks.get(i + 2), ')')) {
            continue;
        }
        let lo = t.line.saturating_sub(LOCK_WINDOW);
        if !s.comment_near(lo, t.line, "lock-order:") {
            let kind = if method == "lock" { "Mutex::lock" } else { "RwLock::read/write" };
            out.push(Finding::new(
                "lock-order",
                path,
                s,
                t.line,
                format!(
                    "`{kind}` without a `// lock-order: N` rank annotation (DESIGN.md §10)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        run_all(path, &scan(src))
    }

    fn passes(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.pass).collect()
    }

    // ---- unsafe-safety -------------------------------------------------

    #[test]
    fn unsafe_without_safety_fires() {
        let f = findings(
            "crates/x/src/lib.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }",
        );
        assert_eq!(passes(&f), vec!["unsafe-safety"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unsafe_with_safety_comment_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_test_region_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 { unsafe { *p } }\n}";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    // ---- no-panic ------------------------------------------------------

    #[test]
    fn unwrap_and_macros_fire() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\") }\nfn h() { todo!() }";
        let f = findings("crates/x/src/lib.rs", src);
        assert_eq!(passes(&f), vec!["no-panic", "no-panic", "no-panic"]);
    }

    #[test]
    fn expect_with_string_literal_fires_but_parser_method_does_not() {
        let flagged = findings(
            "crates/x/src/lib.rs",
            "fn f(x: Option<u8>) -> u8 { x.expect(\"msg\") }",
        );
        assert_eq!(passes(&flagged), vec!["no-panic"]);
        // A parser's own `expect(&Token::…)` method is not Option::expect.
        let clean = findings(
            "crates/x/src/lib.rs",
            "fn f(p: &mut P) -> R { p.expect(&Token::LParen) }",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn unwrap_variants_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn g(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 1) }";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tests_benches_and_bench_crate_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(findings("crates/x/tests/api.rs", src).is_empty());
        assert!(findings("crates/x/benches/perf.rs", src).is_empty());
        assert!(findings("crates/bench/src/lib.rs", src).is_empty());
        assert!(findings("examples/quickstart.rs", src).is_empty());
        // Binary scaffolding under src/bin/ is exempt in every crate and
        // at the workspace root — but src/ library code is not.
        assert!(findings("crates/x/src/bin/driver.rs", src).is_empty());
        assert!(findings("src/bin/tool.rs", src).is_empty());
        assert!(!findings("crates/x/src/binary.rs", src).is_empty());
        let in_tests =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}";
        assert!(findings("crates/x/src/lib.rs", in_tests).is_empty());
    }

    // ---- no-wallclock --------------------------------------------------

    #[test]
    fn wallclock_fires_outside_obs_and_bench() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }";
        let f = findings("crates/par/src/lib.rs", src);
        assert_eq!(passes(&f), vec!["no-wallclock", "no-wallclock"]);
        assert!(findings("crates/obs/src/span.rs", src).is_empty());
        assert!(findings("crates/bench/src/bin/guard.rs", src).is_empty());
        // The load generator times live traffic; it is exempt by design.
        assert!(findings("crates/load/src/lib.rs", src).is_empty());
        let st = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }";
        assert_eq!(passes(&findings("crates/core/src/lake.rs", st)).len(), 2);
    }

    // ---- facade-span ---------------------------------------------------

    #[test]
    fn facade_pub_fn_without_span_fires() {
        let src = "impl ModelLake {\n    pub fn naked(&self) -> usize { self.len }\n}";
        let f = findings("crates/core/src/lake.rs", src);
        assert_eq!(passes(&f), vec!["facade-span"]);
        assert!(f[0].message.contains("naked"));
    }

    #[test]
    fn facade_span_or_annotation_clean() {
        let spanned = "impl ModelLake {\n    pub fn traced(&self) {\n        let _span = mlake_obs::span(\"lake.traced\");\n    }\n}";
        assert!(findings("crates/core/src/lake.rs", spanned).is_empty());
        let annotated = "impl ModelLake {\n    // lint: no-span — trivial accessor\n    pub fn len(&self) -> usize { self.n }\n}";
        assert!(findings("crates/core/src/lake.rs", annotated).is_empty());
    }

    #[test]
    fn facade_ignores_other_impls_and_private_fns() {
        let src = "impl QueryTarget for ModelLake {\n    fn all_models(&self) -> Vec<u64> { vec![] }\n}\nimpl ModelLake {\n    fn private_helper(&self) {}\n    pub(crate) fn crate_helper(&self) {}\n}";
        assert!(findings("crates/core/src/lake.rs", src).is_empty());
    }

    #[test]
    fn facade_covers_wal_and_recovery_types() {
        let src = "impl Wal {\n    pub fn naked(&self) -> usize { 0 }\n}\nimpl Recovery {\n    pub fn also_naked() -> usize { 0 }\n}";
        let f = findings("crates/wal/src/wal.rs", src);
        assert_eq!(passes(&f), vec!["facade-span", "facade-span"]);
        // The same types in a crate with no facade targets are untouched.
        assert!(findings("crates/index/src/hnsw.rs", src).is_empty());
        // ModelLake is not a facade type inside crates/wal.
        let other = "impl ModelLake {\n    pub fn naked(&self) -> usize { 0 }\n}";
        assert!(findings("crates/wal/src/wal.rs", other).is_empty());
    }

    #[test]
    fn facade_covers_server_api_type() {
        let src = "impl Api {\n    pub fn naked(&self) -> usize { 0 }\n}";
        let f = findings("crates/server/src/api.rs", src);
        assert_eq!(passes(&f), vec!["facade-span"]);
        // Api is not a facade type outside crates/server.
        assert!(findings("crates/core/src/lake.rs", src).is_empty());
    }

    #[test]
    fn facade_skips_trait_impls_on_target_types() {
        let src = "impl Drop for Wal {\n    fn drop(&mut self) {}\n}\nimpl Wal for Compat {\n    pub fn shim(&self) -> usize { 0 }\n}";
        assert!(findings("crates/wal/src/wal.rs", src).is_empty());
    }

    // ---- lock-order ----------------------------------------------------

    #[test]
    fn lock_without_rank_fires_in_par_and_index_only() {
        let src = "fn f(m: &Mutex<u8>) { let _g = m.lock(); }";
        assert_eq!(passes(&findings("crates/par/src/lib.rs", src)), vec!["lock-order"]);
        assert_eq!(
            passes(&findings("crates/index/src/hnsw.rs", src)),
            vec!["lock-order"]
        );
        assert_eq!(
            passes(&findings("crates/wal/src/wal.rs", src)),
            vec!["lock-order"]
        );
        assert!(findings("crates/obs/src/recorder.rs", src).is_empty());
        assert_eq!(
            passes(&findings("crates/server/src/dispatch.rs", src)),
            vec!["lock-order"]
        );
    }

    #[test]
    fn lock_with_rank_annotation_clean() {
        let src = "fn f(m: &Mutex<u8>) {\n    // lock-order: 30 (hnsw.entry)\n    let _g = m.lock();\n}";
        assert!(findings("crates/index/src/hnsw.rs", src).is_empty());
    }

    #[test]
    fn field_named_lock_is_not_a_lock_call() {
        let src = "fn f(l: &Latch) { let _v = l.lock.lock.x; }";
        assert!(findings("crates/par/src/lib.rs", src).is_empty());
    }

    #[test]
    fn rwlock_read_write_without_rank_fire() {
        let src = "fn f(l: &RwLock<u8>) { let _a = l.read(); let _b = l.write(); }";
        assert_eq!(
            passes(&findings("crates/index/src/hnsw.rs", src)),
            vec!["lock-order", "lock-order"]
        );
        assert_eq!(passes(&findings("crates/par/src/lib.rs", src)).len(), 2);
        // Out-of-scope crates are untouched (core's registry.read() etc.).
        assert!(findings("crates/core/src/lake.rs", src).is_empty());
    }

    #[test]
    fn rwlock_read_write_with_rank_annotation_clean() {
        let src = "fn f(l: &RwLock<Vec<u32>>) {\n    // lock-order: 40 (hnsw.node)\n    let _g = l.write();\n}";
        assert!(findings("crates/index/src/hnsw.rs", src).is_empty());
    }

    #[test]
    fn read_with_arguments_is_not_an_acquisition() {
        // io::Read-style calls take arguments; only zero-arg `.read()` /
        // `.write()` look like RwLock acquisitions.
        let src = "fn f(r: &mut impl Read, buf: &mut [u8]) { r.read(buf); }";
        assert!(findings("crates/par/src/lib.rs", src).is_empty());
    }
}
