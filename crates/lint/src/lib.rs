//! # mlake-lint
//!
//! Zero-dependency static analysis for the model-lake workspace
//! (DESIGN.md §10). A lightweight Rust scanner ([`lexer`]) feeds five
//! per-file passes ([`passes`]) that machine-enforce the invariants PR
//! review used to carry alone:
//!
//! * `unsafe-safety` — every `unsafe` carries a `// SAFETY:` comment;
//! * `no-panic` — no `unwrap()/expect("…")/panic!/todo!/unimplemented!`
//!   in non-test library code;
//! * `no-wallclock` — `Instant`/`SystemTime` only in `mlake-obs` and the
//!   bench crate (determinism guard);
//! * `facade-span` — every `pub fn` on the `ModelLake` facade opens an
//!   obs span or is annotated `// lint: no-span`;
//! * `lock-order` — `Mutex::lock` in `mlake-index`/`mlake-par` carries a
//!   `// lock-order: N` rank annotation matching the runtime tracker in
//!   `mlake_par::lockorder`.
//!
//! Findings are machine-readable (`file:line: [pass] message`). Legacy
//! violations live in the checked-in [`baseline`] file `lint.allow`; new
//! violations fail CI. Run with:
//!
//! ```text
//! cargo run -p mlake-lint --release -- crates src
//! ```

pub mod baseline;
pub mod callgraph;
pub mod json;
pub mod lexer;
pub mod passes;
pub mod resolve;
pub mod wpa;

pub use baseline::{Baseline, MatchReport};
pub use passes::{run_all, Finding};

use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, vendored shims, VCS).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// Recursively collects `.rs` files under `root`, sorted for determinism.
/// Paths are returned relative to `base` with forward slashes.
pub fn collect_rs_files(base: &Path, root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path.strip_prefix(base).unwrap_or(&path).to_path_buf());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Normalises a path to the workspace-relative forward-slash form the
/// passes and baseline key on.
pub fn norm_path(p: &Path) -> String {
    p.components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans one file's source text and runs every applicable per-file pass.
/// Whole-program passes need the full workspace — see [`lint_files`].
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    passes::run_all(path, &lexer::scan(src))
}

/// Runs the full pipeline — per-file passes on every file, then the
/// whole-program passes ([`wpa`]) over the non-exempt subset — on
/// in-memory sources. `direct_deps` is the crate dependency map (see
/// [`resolve::crate_deps_from_manifests`] / [`resolve::deps_all`]); it
/// bounds cross-crate call resolution.
pub fn lint_files(
    sources: Vec<(String, String)>,
    direct_deps: &HashMap<String, Vec<String>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut workspace_sources = Vec::new();
    for (path, src) in sources {
        let scanned = lexer::scan(&src);
        findings.extend(passes::run_all(&path, &scanned));
        if !passes::exempt_path(&path) {
            workspace_sources.push((path, scanned));
        }
    }
    let ws = resolve::Workspace::build(workspace_sources, direct_deps);
    let cg = callgraph::CallGraph::build(&ws);
    findings.extend(wpa::Wpa::build(&ws, &cg).run());
    findings.sort_by(|a, b| (&a.path, a.line, a.pass).cmp(&(&b.path, b.line, b.pass)));
    findings
}

/// Lints every `.rs` file under `roots` (resolved against `base`) with
/// the full pipeline, reading crate dependencies from the workspace
/// manifests. Returns findings sorted by (path, line, pass).
pub fn lint_tree(base: &Path, roots: &[&Path]) -> std::io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for root in roots {
        let abs = base.join(root);
        for rel in collect_rs_files(base, &abs)? {
            let src = std::fs::read_to_string(base.join(&rel))?;
            sources.push((norm_path(&rel), src));
        }
    }
    let deps = resolve::crate_deps_from_manifests(base)?;
    Ok(lint_files(sources, &deps))
}

/// The reconstructed lock-rank table for `roots` (the `--locks` dump):
/// rank → (names, acquisition-site count), from `// lock-order:`
/// annotations plus guard-returning fn transfers.
pub fn lock_table(
    base: &Path,
    roots: &[&Path],
) -> std::io::Result<std::collections::BTreeMap<u32, (std::collections::BTreeSet<String>, usize)>> {
    let mut sources = Vec::new();
    for root in roots {
        let abs = base.join(root);
        for rel in collect_rs_files(base, &abs)? {
            let path = norm_path(&rel);
            if passes::exempt_path(&path) {
                continue;
            }
            let src = std::fs::read_to_string(base.join(&rel))?;
            sources.push((path, lexer::scan(&src)));
        }
    }
    let deps = resolve::crate_deps_from_manifests(base)?;
    let ws = resolve::Workspace::build(sources, &deps);
    let cg = callgraph::CallGraph::build(&ws);
    Ok(wpa::Wpa::build(&ws, &cg).rank_table())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole workspace must lint clean modulo the checked-in
    /// `lint.allow` baseline — the acceptance criterion of the lint layer,
    /// enforced on every `cargo test` run, not just in CI.
    #[test]
    fn workspace_is_clean_modulo_baseline() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings =
            lint_tree(&root, &[Path::new("crates"), Path::new("src")]).expect("scan workspace");
        let allow_text = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
        let allow = Baseline::parse(&allow_text).expect("lint.allow parses");
        let report = allow.matches(&findings);
        assert!(
            report.new_findings.is_empty(),
            "unbaselined lint findings:\n{}",
            report
                .new_findings
                .iter()
                .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.pass, f.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The baseline must stay tight: every entry still matches real code.
    /// A stale entry means a violation was fixed — delete its line from
    /// `lint.allow` to lock in the progress.
    #[test]
    fn baseline_has_no_stale_entries() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings =
            lint_tree(&root, &[Path::new("crates"), Path::new("src")]).expect("scan workspace");
        let allow_text = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
        let allow = Baseline::parse(&allow_text).expect("lint.allow parses");
        let report = allow.matches(&findings);
        assert!(
            report.stale.is_empty(),
            "stale lint.allow entries (fixed code — delete these lines):\n{}",
            report
                .stale
                .iter()
                .map(|e| format!("{}\t{}\t{}", e.pass, e.path, e.snippet))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
