//! Whole-program passes over the call graph (DESIGN.md §10).
//!
//! | id                    | rule                                                  |
//! |-----------------------|-------------------------------------------------------|
//! | `lock-cycle`          | the static lock-acquisition graph is strictly rank-increasing (strict monotonicity implies acyclicity, so one check subsumes both inversion and cycle detection); ranks and names are a bijection |
//! | `transitive-panic`    | no facade `pub fn`'s call chain reaches a panic site  |
//! | `blocking-under-lock` | no fsync / `accept()` / `join()` / dispatch enqueue while a lock rank is held |
//!
//! The analysis is built on three conservative models:
//!
//! * **Guard regions.** A lock acquired at token `t` is modelled as held
//!   until the `}` of the innermost block containing `t`. The workspace
//!   convention of scoping guards into `{ … }` blocks (par, hnsw,
//!   dispatch, server) makes this precise in practice; an acquisition at
//!   fn top level is held to the end of the fn — over-approximate when
//!   the guard is `drop`ped early, which only produces extra edges, never
//!   missed ones (modulo the call-resolution gaps listed in
//!   [`crate::resolve`]).
//! * **Guard-returning fns.** A fn whose return type mentions a `*Guard`
//!   ident and that acquires a rank (directly or via another such fn)
//!   transfers the acquisition to its call sites — this is how
//!   `Wal::lock_inner` makes `append`'s fsync-under-lock visible.
//! * **Fixpoint summaries.** `ranks_in(f)`, `panics(f)` and `blocks(f)`
//!   are propagated over the call graph to a fixpoint, so chains of any
//!   depth are covered. Reported chains are BFS-shortest.
//!
//! Escape hatches: `// lint: panic-ok <why>` excludes a deliberate-abort
//! panic site from `transitive-panic` (the per-file `no-panic` pass still
//! sees it); `// lint: blocking-ok <why>` accepts a blocking call under a
//! lock (e.g. the WAL's group-commit fsync).

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::passes::{facade_targets, Finding, ANNOTATION_WINDOW, LOCK_WINDOW};
use crate::resolve::{ident_at, punct_at, FnId, Workspace};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// One lock acquisition attributed to a fn.
#[derive(Debug, Clone)]
struct Acq {
    /// Token index of the acquisition (or of the guard-fn call).
    tok: usize,
    /// 1-based line.
    line: usize,
    /// Annotated rank.
    rank: u32,
    /// Annotated lock name (empty when the annotation has none).
    name: String,
    /// Token index of the `}` closing the guard's region.
    region_end: usize,
}

/// A panic or blocking site attributed to a fn.
#[derive(Debug, Clone)]
struct Site {
    /// 1-based line.
    line: usize,
    /// What the site is (`panic!`, `fsync`, …) for messages.
    what: String,
}

/// The assembled whole-program analysis state.
pub struct Wpa<'a> {
    ws: &'a Workspace,
    cg: &'a CallGraph,
    /// Per-fn acquisitions: direct plus guard-fn-call transfers.
    acqs: Vec<Vec<Acq>>,
    /// Per-fn direct panic sites (minus `panic-ok`).
    panics: Vec<Vec<Site>>,
    /// Per-fn direct blocking sites (minus `blocking-ok`).
    blocks: Vec<Vec<Site>>,
    /// Rank transferred to callers, for guard-returning fns.
    guard_rank: Vec<Option<(u32, String)>>,
    /// Fixpoint: every rank fn may acquire, transitively.
    ranks_in: Vec<BTreeSet<u32>>,
    /// Fixpoint: fn may reach a panic site.
    panic_reach: Vec<bool>,
    /// Fixpoint: fn may reach a blocking site.
    block_reach: Vec<bool>,
}

/// Parses `lock-order: N (name)` out of a comment near `line`, taking the
/// nearest matching comment within [`LOCK_WINDOW`] lines above.
fn rank_annotation(s: &crate::lexer::Scanned, line: usize) -> Option<(u32, String)> {
    let lo = line.saturating_sub(LOCK_WINDOW);
    let mut best: Option<(usize, (u32, String))> = None;
    for c in &s.comments {
        if c.end_line < lo || c.line > line {
            continue;
        }
        let Some(at) = c.text.find("lock-order:") else {
            continue;
        };
        let rest = c.text[at + "lock-order:".len()..].trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let Ok(rank) = digits.parse::<u32>() else {
            continue;
        };
        let name = rest[digits.len()..]
            .trim_start()
            .strip_prefix('(')
            .and_then(|r| r.split(')').next())
            .unwrap_or("")
            .to_string();
        if best.as_ref().is_none_or(|(l, _)| c.line >= *l) {
            best = Some((c.line, (rank, name)));
        }
    }
    best.map(|(_, r)| r)
}

/// True when the construct at `line` carries a `// lint: <tag>` annotation
/// within [`ANNOTATION_WINDOW`] lines above (or on the line itself).
fn annotated(s: &crate::lexer::Scanned, line: usize, tag: &str) -> bool {
    s.comment_near(line.saturating_sub(ANNOTATION_WINDOW), line, tag)
}

impl<'a> Wpa<'a> {
    /// Builds all summaries for the workspace.
    pub fn build(ws: &'a Workspace, cg: &'a CallGraph) -> Wpa<'a> {
        let n = ws.fns.len();
        let mut wpa = Wpa {
            ws,
            cg,
            acqs: vec![Vec::new(); n],
            panics: vec![Vec::new(); n],
            blocks: vec![Vec::new(); n],
            guard_rank: vec![None; n],
            ranks_in: vec![BTreeSet::new(); n],
            panic_reach: vec![false; n],
            block_reach: vec![false; n],
        };
        wpa.collect_direct_sites();
        wpa.resolve_guard_fns();
        wpa.transfer_guard_acquisitions();
        wpa.fixpoints();
        wpa
    }

    /// Innermost fn whose body contains token `tok` of file `fi`.
    fn fn_at(&self, fi: usize, tok: usize) -> Option<FnId> {
        let mut best: Option<(usize, FnId)> = None;
        for (id, f) in self.ws.fns.iter().enumerate() {
            if f.file != fi {
                continue;
            }
            if let Some((open, close)) = f.body {
                if open < tok && tok < close && best.is_none_or(|(o, _)| open > o) {
                    best = Some((open, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Walks every non-exempt file once, attributing acquisition, panic
    /// and blocking sites to their enclosing fns.
    fn collect_direct_sites(&mut self) {
        for (fi, file) in self.ws.files.iter().enumerate() {
            let s = &file.scanned;
            let toks = &s.tokens;
            for (i, t) in toks.iter().enumerate() {
                let Some(name) = ident_at(toks, i) else {
                    continue;
                };
                if s.in_test_region(t.line) {
                    continue;
                }
                let Some(owner) = self.fn_at(fi, i) else {
                    continue;
                };
                if self.ws.fns[owner].in_test {
                    continue;
                }
                let prev_dot = i > 0 && punct_at(toks, i - 1, '.');
                let zero_arg = punct_at(toks, i + 1, '(') && punct_at(toks, i + 2, ')');

                // Acquisitions: annotated zero-arg lock primitives.
                if matches!(name, "lock" | "read" | "write") && prev_dot && zero_arg {
                    if let Some((rank, lname)) = rank_annotation(s, t.line) {
                        self.acqs[owner].push(Acq {
                            tok: i,
                            line: t.line,
                            rank,
                            name: lname,
                            region_end: file.enclosing_block_end(i),
                        });
                    }
                    continue;
                }

                // Panic sites (mirrors the per-file `no-panic` matcher).
                let is_panic = match name {
                    "unwrap" => prev_dot && zero_arg,
                    "expect" => {
                        prev_dot
                            && punct_at(toks, i + 1, '(')
                            && matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::StrLit))
                    }
                    "panic" | "todo" | "unimplemented" => punct_at(toks, i + 1, '!'),
                    _ => false,
                };
                if is_panic {
                    if !annotated(s, t.line, "lint: panic-ok") {
                        self.panics[owner].push(Site {
                            line: t.line,
                            what: match name {
                                "unwrap" => ".unwrap()".into(),
                                "expect" => ".expect(\"…\")".into(),
                                m => format!("{m}!"),
                            },
                        });
                    }
                    continue;
                }

                // Blocking sites: fsync-class calls, `accept()`, `join()`,
                // dispatch enqueue.
                let is_block = match name {
                    "sync_all" | "sync_data" | "fsync" => {
                        punct_at(toks, i + 1, '(')
                            && ident_at(toks, i.wrapping_sub(1)) != Some("fn")
                    }
                    "accept" | "join" => prev_dot && zero_arg,
                    "try_submit" => prev_dot && punct_at(toks, i + 1, '('),
                    _ => false,
                };
                if is_block && !annotated(s, t.line, "lint: blocking-ok") {
                    self.blocks[owner].push(Site {
                        line: t.line,
                        what: match name {
                            "accept" => "TcpListener::accept()".into(),
                            "join" => "JoinHandle::join()".into(),
                            "try_submit" => "dispatch enqueue".into(),
                            f => format!("{f}() (fsync-class I/O)"),
                        },
                    });
                }
            }
        }
    }

    /// Fixpoint for guard-returning fns: a fn whose return type mentions
    /// `*Guard` and that acquires a rank (directly or via another guard
    /// fn) transfers that rank to its callers.
    fn resolve_guard_fns(&mut self) {
        let returns_guard: Vec<bool> = self
            .ws
            .fns
            .iter()
            .map(|f| f.ret_idents.iter().any(|r| r.contains("Guard")))
            .collect();
        loop {
            let mut changed = false;
            for (id, &rg) in returns_guard.iter().enumerate() {
                if !rg || self.guard_rank[id].is_some() {
                    continue;
                }
                let found = self.acqs[id]
                    .first()
                    .map(|a| (a.rank, a.name.clone()))
                    .or_else(|| {
                        self.cg.edges[id]
                            .iter()
                            .find_map(|s| self.guard_rank[s.callee].clone())
                    });
                if found.is_some() {
                    self.guard_rank[id] = found;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Adds a synthetic acquisition at every call site of a guard-
    /// returning fn, scoped to the caller's innermost block.
    fn transfer_guard_acquisitions(&mut self) {
        let mut extra: Vec<(FnId, Acq)> = Vec::new();
        for (id, f) in self.ws.fns.iter().enumerate() {
            for site in &self.cg.edges[id] {
                if let Some((rank, name)) = &self.guard_rank[site.callee] {
                    let file = &self.ws.files[f.file];
                    extra.push((
                        id,
                        Acq {
                            tok: site.tok,
                            line: site.line,
                            rank: *rank,
                            name: name.clone(),
                            region_end: file.enclosing_block_end(site.tok),
                        },
                    ));
                }
            }
        }
        for (id, acq) in extra {
            self.acqs[id].push(acq);
        }
        for a in &mut self.acqs {
            a.sort_by_key(|x| x.tok);
        }
    }

    /// Propagates rank / panic / blocking summaries over the call graph.
    fn fixpoints(&mut self) {
        for id in 0..self.ws.fns.len() {
            self.ranks_in[id] = self.acqs[id].iter().map(|a| a.rank).collect();
            self.panic_reach[id] = !self.panics[id].is_empty();
            self.block_reach[id] = !self.blocks[id].is_empty();
        }
        loop {
            let mut changed = false;
            for id in 0..self.ws.fns.len() {
                for site in &self.cg.edges[id] {
                    let callee_ranks: Vec<u32> =
                        self.ranks_in[site.callee].iter().copied().collect();
                    for r in callee_ranks {
                        if self.ranks_in[id].insert(r) {
                            changed = true;
                        }
                    }
                    if self.panic_reach[site.callee] && !self.panic_reach[id] {
                        self.panic_reach[id] = true;
                        changed = true;
                    }
                    if self.block_reach[site.callee] && !self.block_reach[id] {
                        self.block_reach[id] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// BFS-shortest call path from `start` to a fn satisfying `hit`,
    /// following only fns satisfying `via`. Returns the FnId path
    /// including both endpoints.
    fn chain_to(
        &self,
        start: FnId,
        via: impl Fn(FnId) -> bool,
        hit: impl Fn(FnId) -> bool,
    ) -> Option<Vec<FnId>> {
        if hit(start) {
            return Some(vec![start]);
        }
        let mut parent: Vec<Option<FnId>> = vec![None; self.ws.fns.len()];
        let mut seen = vec![false; self.ws.fns.len()];
        let mut q = VecDeque::new();
        seen[start] = true;
        q.push_back(start);
        while let Some(f) = q.pop_front() {
            for site in &self.cg.edges[f] {
                let c = site.callee;
                if seen[c] {
                    continue;
                }
                seen[c] = true;
                parent[c] = Some(f);
                if hit(c) {
                    let mut path = vec![c];
                    let mut cur = c;
                    while let Some(p) = parent[cur] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                if via(c) {
                    q.push_back(c);
                }
            }
        }
        None
    }

    /// `crate::Type::fn (path:line)` for chain rendering.
    fn fn_label(&self, id: FnId) -> String {
        let f = &self.ws.fns[id];
        let file = &self.ws.files[f.file];
        format!(
            "mlake-{}::{} ({}:{})",
            file.crate_name,
            f.qual_name(),
            file.path,
            f.line
        )
    }

    fn finding(
        &self,
        pass: &'static str,
        fid: FnId,
        line: usize,
        message: String,
        chain: Vec<String>,
    ) -> Finding {
        let file = &self.ws.files[self.ws.fns[fid].file];
        Finding {
            pass,
            path: file.path.clone(),
            line,
            message,
            snippet: file.scanned.snippet(line).to_string(),
            chain,
        }
    }

    /// Runs all three whole-program passes.
    pub fn run(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        self.lock_cycle(&mut out);
        self.transitive_panic(&mut out);
        self.blocking_under_lock(&mut out);
        let mut seen = HashSet::new();
        out.retain(|f| seen.insert((f.pass, f.path.clone(), f.line, f.message.clone())));
        out.sort_by(|a, b| (&a.path, a.line, a.pass).cmp(&(&b.path, b.line, b.pass)));
        out
    }

    /// The reconstructed rank table: rank → (name, acquisition count),
    /// for `--locks` and the DESIGN.md §10 hierarchy.
    pub fn rank_table(&self) -> BTreeMap<u32, (BTreeSet<String>, usize)> {
        let mut table: BTreeMap<u32, (BTreeSet<String>, usize)> = BTreeMap::new();
        for (id, acqs) in self.acqs.iter().enumerate() {
            let _ = id;
            for a in acqs {
                let entry = table.entry(a.rank).or_default();
                if !a.name.is_empty() {
                    entry.0.insert(a.name.clone());
                }
                entry.1 += 1;
            }
        }
        table
    }

    /// `lock-cycle`: every acquisition made while a rank is held must be
    /// strictly greater; ranks and names must map one-to-one.
    fn lock_cycle(&self, out: &mut Vec<Finding>) {
        // Rank/name bijection over the annotated sites.
        let mut by_rank: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        for (id, acqs) in self.acqs.iter().enumerate() {
            for a in acqs {
                if a.name.is_empty() {
                    continue;
                }
                by_rank.entry(a.rank).or_default().insert(a.name.clone());
                by_name.entry(a.name.clone()).or_default().insert(a.rank);
                if by_rank[&a.rank].len() > 1 || by_name[&a.name].len() > 1 {
                    out.push(self.finding(
                        "lock-cycle",
                        id,
                        a.line,
                        format!(
                            "rank/name mismatch: rank {} is annotated as {:?} elsewhere, `{}` as rank {:?}",
                            a.rank, by_rank[&a.rank], a.name, by_name[&a.name]
                        ),
                        Vec::new(),
                    ));
                }
            }
        }

        for (id, acqs) in self.acqs.iter().enumerate() {
            for (ai, a) in acqs.iter().enumerate() {
                // Direct nested acquisitions inside a's guard region.
                for b in &acqs[ai + 1..] {
                    if b.tok > a.region_end {
                        break;
                    }
                    if b.rank <= a.rank {
                        out.push(self.finding(
                            "lock-cycle",
                            id,
                            a.line,
                            format!(
                                "lock rank {} ({}) held here while acquiring rank {} ({}) at line {} — acquisition order must be strictly increasing (DESIGN.md §10)",
                                a.rank, a.name, b.rank, b.name, b.line
                            ),
                            vec![self.fn_label(id)],
                        ));
                    }
                }
                // Acquisitions reached through calls inside the region.
                for site in self.cg.sites_in_range(id, a.tok, a.region_end + 1) {
                    for &r in &self.ranks_in[site.callee] {
                        if r > a.rank {
                            continue;
                        }
                        let chain = self
                            .chain_to(
                                site.callee,
                                |_| true,
                                |f| self.acqs[f].iter().any(|x| x.rank == r),
                            )
                            .unwrap_or_else(|| vec![site.callee]);
                        let mut rendered = vec![self.fn_label(id)];
                        rendered.extend(chain.iter().map(|&f| self.fn_label(f)));
                        out.push(self.finding(
                            "lock-cycle",
                            id,
                            a.line,
                            format!(
                                "lock rank {} ({}) held here while the call at line {} can acquire rank {r} — acquisition order must be strictly increasing (DESIGN.md §10)",
                                a.rank, a.name, site.line
                            ),
                            rendered,
                        ));
                    }
                }
            }
        }
    }

    /// `transitive-panic`: no facade `pub fn` may reach a panic site.
    fn transitive_panic(&self, out: &mut Vec<Finding>) {
        for (id, f) in self.ws.fns.iter().enumerate() {
            if !f.is_pub || f.in_test || f.trait_impl {
                continue;
            }
            let file = &self.ws.files[f.file];
            let Some(ty) = &f.impl_type else { continue };
            if !facade_targets(&file.path).contains(&ty.as_str()) {
                continue;
            }
            if !self.panic_reach[id] {
                continue;
            }
            let Some(chain) = self.chain_to(id, |_| true, |g| !self.panics[g].is_empty()) else {
                continue;
            };
            let last = *chain.last().unwrap_or(&id);
            let site = &self.panics[last][0];
            let mut rendered: Vec<String> = chain.iter().map(|&g| self.fn_label(g)).collect();
            rendered.push(format!(
                "{} at {}:{}",
                site.what, self.ws.files[self.ws.fns[last].file].path, site.line
            ));
            out.push(self.finding(
                "transitive-panic",
                id,
                f.line,
                format!(
                    "facade method `{}` can reach {} via {} call(s) — convert the chain to Result or annotate the site `// lint: panic-ok <why>`",
                    f.qual_name(),
                    site.what,
                    chain.len().saturating_sub(1)
                ),
                rendered,
            ));
        }
    }

    /// `blocking-under-lock`: no fsync-class I/O, `accept()`, `join()` or
    /// dispatch enqueue while any lock rank is held.
    fn blocking_under_lock(&self, out: &mut Vec<Finding>) {
        for (id, acqs) in self.acqs.iter().enumerate() {
            let f = &self.ws.fns[id];
            let file = &self.ws.files[f.file];
            let toks = &file.scanned.tokens;
            for a in acqs {
                // Direct blocking sites textually inside the guard region.
                for b in &self.blocks[id] {
                    let in_region = toks
                        .iter()
                        .enumerate()
                        .any(|(k, t)| k > a.tok && k <= a.region_end && t.line == b.line);
                    if in_region {
                        out.push(self.finding(
                            "blocking-under-lock",
                            id,
                            b.line,
                            format!(
                                "{} while holding lock rank {} ({}) acquired at line {} — move it out of the guard region or annotate `// lint: blocking-ok <why>`",
                                b.what, a.rank, a.name, a.line
                            ),
                            vec![self.fn_label(id)],
                        ));
                    }
                }
                // Blocking reached through calls made inside the region.
                for site in self.cg.sites_in_range(id, a.tok, a.region_end + 1) {
                    if !self.block_reach[site.callee] {
                        continue;
                    }
                    if annotated(&file.scanned, site.line, "lint: blocking-ok") {
                        continue;
                    }
                    let Some(chain) =
                        self.chain_to(site.callee, |_| true, |g| !self.blocks[g].is_empty())
                    else {
                        continue;
                    };
                    let last = *chain.last().unwrap_or(&site.callee);
                    let b = &self.blocks[last][0];
                    let mut rendered = vec![self.fn_label(id)];
                    rendered.extend(chain.iter().map(|&g| self.fn_label(g)));
                    rendered.push(format!(
                        "{} at {}:{}",
                        b.what, self.ws.files[self.ws.fns[last].file].path, b.line
                    ));
                    out.push(self.finding(
                        "blocking-under-lock",
                        id,
                        site.line,
                        format!(
                            "call while holding lock rank {} ({}) can reach {} — move it out of the guard region or annotate `// lint: blocking-ok <why>`",
                            a.rank, a.name, b.what
                        ),
                        rendered,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::resolve::deps_all;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources = files
            .iter()
            .map(|(p, s)| (p.to_string(), scan(s)))
            .collect();
        let crates: Vec<&str> = files
            .iter()
            .map(|(p, _)| Box::leak(crate::resolve::crate_of_path(p).into_boxed_str()) as &str)
            .collect();
        let ws = Workspace::build(sources, &deps_all(&crates));
        let cg = CallGraph::build(&ws);
        Wpa::build(&ws, &cg).run()
    }

    fn by_pass<'f>(f: &'f [Finding], pass: &str) -> Vec<&'f Finding> {
        f.iter().filter(|x| x.pass == pass).collect()
    }

    // ---- lock-cycle ----------------------------------------------------

    #[test]
    fn increasing_acquisition_order_is_clean() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M) {\n    // lock-order: 10 (a.low)\n    let _g = m.lock();\n    {\n        // lock-order: 20 (a.high)\n        let _h = m.lock();\n    }\n}",
        )]);
        assert!(by_pass(&f, "lock-cycle").is_empty(), "{f:?}");
    }

    #[test]
    fn direct_inversion_fires() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M) {\n    // lock-order: 20 (a.high)\n    let _g = m.lock();\n    // lock-order: 10 (a.low)\n    let _h = m.lock();\n}",
        )]);
        let hits = by_pass(&f, "lock-cycle");
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("rank 20"));
        assert!(hits[0].message.contains("rank 10"));
    }

    #[test]
    fn scoped_guard_release_is_respected() {
        // The first guard's block closes before the second acquisition, so
        // there is no inversion even though ranks descend textually.
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M) {\n    {\n        // lock-order: 20 (a.high)\n        let _g = m.lock();\n    }\n    // lock-order: 10 (a.low)\n    let _h = m.lock();\n}",
        )]);
        assert!(by_pass(&f, "lock-cycle").is_empty(), "{f:?}");
    }

    #[test]
    fn cross_fn_inversion_fires_with_chain() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn outer(m: &M) {\n    // lock-order: 20 (a.high)\n    let _g = m.lock();\n    inner(m);\n}\nfn inner(m: &M) {\n    middle(m);\n}\nfn middle(m: &M) {\n    // lock-order: 10 (a.low)\n    let _h = m.lock();\n}",
        )]);
        let hits = by_pass(&f, "lock-cycle");
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].chain.len() >= 3, "chain: {:?}", hits[0].chain);
        assert!(hits[0].chain.iter().any(|c| c.contains("middle")));
    }

    #[test]
    fn same_rank_reacquisition_fires() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M) {\n    // lock-order: 10 (a.q)\n    let _g = m.lock();\n    // lock-order: 10 (a.q)\n    let _h = m.lock();\n}",
        )]);
        assert_eq!(by_pass(&f, "lock-cycle").len(), 1);
    }

    #[test]
    fn rank_name_mismatch_fires() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M) {\n    // lock-order: 10 (a.q)\n    let _g = m.lock();\n}\nfn g(m: &M) {\n    // lock-order: 10 (a.other)\n    let _g = m.lock();\n}",
        )]);
        assert!(!by_pass(&f, "lock-cycle").is_empty());
    }

    #[test]
    fn guard_returning_fn_transfers_acquisition() {
        // `locked` returns a guard; the caller holds rank 20 and then
        // acquires rank 10 through it in a nested call — inversion.
        let f = run(&[(
            "crates/a/src/lib.rs",
            "struct W;\nimpl W {\n    fn locked(&self) -> InnerGuard<'_> {\n        // lock-order: 10 (a.inner)\n        self.m.lock()\n    }\n    fn caller(&self, m: &M) {\n        // lock-order: 20 (a.outer)\n        let _g = m.lock();\n        let _inner = self.locked();\n    }\n}",
        )]);
        let hits = by_pass(&f, "lock-cycle");
        assert!(!hits.is_empty(), "{f:?}");
    }

    // ---- transitive-panic ----------------------------------------------

    #[test]
    fn facade_chain_to_panic_fires_with_full_path() {
        let f = run(&[
            (
                "crates/core/src/lake.rs",
                "use mlake_nn::step_two;\nimpl ModelLake {\n    pub fn ingest(&self) {\n        let _span = span(\"x\");\n        step_two();\n    }\n}\nfn span(_: &str) {}",
            ),
            (
                "crates/nn/src/lib.rs",
                "pub fn step_two() { step_three(); }\nfn step_three(x: Option<u8>) -> u8 { x.unwrap() }",
            ),
        ]);
        let hits = by_pass(&f, "transitive-panic");
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("ingest"));
        assert_eq!(hits[0].path, "crates/core/src/lake.rs");
        // Chain: ingest → step_two → step_three → site.
        assert!(hits[0].chain.len() == 4, "chain: {:?}", hits[0].chain);
        assert!(hits[0].chain[3].contains("crates/nn/src/lib.rs"));
    }

    #[test]
    fn non_facade_and_private_fns_are_not_roots() {
        let f = run(&[(
            "crates/core/src/lake.rs",
            "impl ModelLake {\n    fn private(&self) { boom(); }\n}\nimpl Other {\n    pub fn public(&self) { boom(); }\n}\nfn boom() { panic!(\"x\") }",
        )]);
        assert!(by_pass(&f, "transitive-panic").is_empty(), "{f:?}");
    }

    #[test]
    fn panic_ok_annotation_excludes_site() {
        let f = run(&[(
            "crates/core/src/lake.rs",
            "impl ModelLake {\n    pub fn ingest(&self) { boom(); }\n}\nfn boom() {\n    // lint: panic-ok deliberate abort on poisoned invariant\n    panic!(\"x\")\n}",
        )]);
        assert!(by_pass(&f, "transitive-panic").is_empty(), "{f:?}");
    }

    #[test]
    fn facade_direct_panic_is_its_own_chain() {
        let f = run(&[(
            "crates/wal/src/wal.rs",
            "impl Wal {\n    pub fn append(&self) { panic!(\"no\") }\n}",
        )]);
        let hits = by_pass(&f, "transitive-panic");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].chain.len(), 2, "chain: {:?}", hits[0].chain);
    }

    // ---- blocking-under-lock -------------------------------------------

    #[test]
    fn fsync_under_lock_fires() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M, file: &File) {\n    // lock-order: 50 (a.inner)\n    let _g = m.lock();\n    file.sync_all();\n}",
        )]);
        let hits = by_pass(&f, "blocking-under-lock");
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("rank 50"));
    }

    #[test]
    fn fsync_after_guard_scope_is_clean() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M, file: &File) {\n    {\n        // lock-order: 50 (a.inner)\n        let _g = m.lock();\n    }\n    file.sync_all();\n}",
        )]);
        assert!(by_pass(&f, "blocking-under-lock").is_empty(), "{f:?}");
    }

    #[test]
    fn blocking_ok_annotation_suppresses() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M, file: &File) {\n    // lock-order: 50 (a.inner)\n    let _g = m.lock();\n    // lint: blocking-ok group commit fsyncs under the lock by design\n    file.sync_all();\n}",
        )]);
        assert!(by_pass(&f, "blocking-under-lock").is_empty(), "{f:?}");
    }

    #[test]
    fn join_reached_through_call_fires_with_chain() {
        let f = run(&[(
            "crates/a/src/lib.rs",
            "fn f(m: &M) {\n    // lock-order: 7 (a.conns)\n    let _g = m.lock();\n    drain();\n}\nfn drain() { handle.join(); }",
        )]);
        let hits = by_pass(&f, "blocking-under-lock");
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].chain.iter().any(|c| c.contains("drain")));
    }

    // ---- rank table ----------------------------------------------------

    #[test]
    fn rank_table_reconstructs_hierarchy() {
        let sources = vec![(
            "crates/a/src/lib.rs".to_string(),
            scan("fn f(m: &M) {\n    // lock-order: 10 (a.q)\n    let _g = m.lock();\n}\nfn g(m: &M) {\n    // lock-order: 20 (a.latch)\n    let _h = m.read();\n}"),
        )];
        let ws = Workspace::build(sources, &deps_all(&["a"]));
        let cg = CallGraph::build(&ws);
        let wpa = Wpa::build(&ws, &cg);
        let table = wpa.rank_table();
        assert_eq!(table.len(), 2);
        assert!(table[&10].0.contains("a.q"));
        assert!(table[&20].0.contains("a.latch"));
    }
}
