//! The `mlake-lint` CLI.
//!
//! ```text
//! mlake-lint [--baseline <path>] [--update-baseline] [--no-baseline] <root>...
//! ```
//!
//! Scans every `.rs` file under the given roots (relative to the current
//! directory), runs the five passes and matches findings against the
//! `lint.allow` baseline. Exit codes: 0 = clean (modulo baseline),
//! 1 = new findings, 2 = usage/IO error.

use mlake_lint::{lint_tree, Baseline};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    roots: Vec<PathBuf>,
    baseline_path: PathBuf,
    update_baseline: bool,
    use_baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        roots: Vec::new(),
        baseline_path: PathBuf::from("lint.allow"),
        update_baseline: false,
        use_baseline: true,
    };
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| "--baseline requires a path".to_string())?;
                opts.baseline_path = PathBuf::from(p);
            }
            "--update-baseline" => opts.update_baseline = true,
            "--no-baseline" => opts.use_baseline = false,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag: {flag}"));
            }
            root => opts.roots.push(PathBuf::from(root)),
        }
        i += 1;
    }
    if opts.roots.is_empty() {
        return Err("usage: mlake-lint [--baseline <path>] [--update-baseline] [--no-baseline] <root>...".into());
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;
    let base = Path::new(".");
    let roots: Vec<&Path> = opts.roots.iter().map(PathBuf::as_path).collect();
    let findings =
        lint_tree(base, &roots).map_err(|e| format!("scan failed: {e}"))?;

    if opts.update_baseline {
        let text = Baseline::render(&findings);
        std::fs::write(&opts.baseline_path, text)
            .map_err(|e| format!("writing {}: {e}", opts.baseline_path.display()))?;
        println!(
            "mlake-lint: wrote {} entries to {}",
            findings.len(),
            opts.baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = if opts.use_baseline {
        match std::fs::read_to_string(&opts.baseline_path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => return Err(format!("reading {}: {e}", opts.baseline_path.display())),
        }
    } else {
        Baseline::default()
    };

    let report = baseline.matches(&findings);
    for f in &report.new_findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.pass, f.message);
    }
    for e in &report.stale {
        eprintln!(
            "mlake-lint: stale baseline entry (fixed — delete from {}): {}\t{}\t{}",
            opts.baseline_path.display(),
            e.pass,
            e.path,
            e.snippet
        );
    }
    let allowed = findings.len() - report.new_findings.len();
    println!(
        "mlake-lint: {} findings ({} new, {} baselined), {} stale baseline entries",
        findings.len(),
        report.new_findings.len(),
        allowed,
        report.stale.len()
    );
    Ok(report.new_findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("mlake-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
