//! The `mlake-lint` CLI.
//!
//! ```text
//! mlake-lint [--baseline <path>] [--update-baseline] [--no-baseline]
//!            [--json <path|->] [--locks] <root>...
//! ```
//!
//! Scans every `.rs` file under the given roots (relative to the current
//! directory), runs the five per-file passes plus the three whole-program
//! passes, and matches findings against the `lint.allow` baseline.
//! `--json` additionally writes the machine-readable report (schema
//! `mlake-lint/1`, see [`mlake_lint::json`]) to a file or stdout (`-`).
//! `--locks` prints the lock-rank table reconstructed from `lock-order:`
//! annotations and exits. Exit codes: 0 = clean (modulo baseline),
//! 1 = new findings, 2 = usage/IO error.

use mlake_lint::{json, lint_tree, lock_table, Baseline};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    roots: Vec<PathBuf>,
    baseline_path: PathBuf,
    update_baseline: bool,
    use_baseline: bool,
    json_path: Option<PathBuf>,
    locks: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        roots: Vec::new(),
        baseline_path: PathBuf::from("lint.allow"),
        update_baseline: false,
        use_baseline: true,
        json_path: None,
        locks: false,
    };
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| "--baseline requires a path".to_string())?;
                opts.baseline_path = PathBuf::from(p);
            }
            "--update-baseline" => opts.update_baseline = true,
            "--no-baseline" => opts.use_baseline = false,
            "--json" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| "--json requires a path (or `-` for stdout)".to_string())?;
                opts.json_path = Some(PathBuf::from(p));
            }
            "--locks" => opts.locks = true,
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(format!("unknown flag: {flag}"));
            }
            root => opts.roots.push(PathBuf::from(root)),
        }
        i += 1;
    }
    if opts.roots.is_empty() {
        return Err(
            "usage: mlake-lint [--baseline <path>] [--update-baseline] [--no-baseline] [--json <path|->] [--locks] <root>..."
                .into(),
        );
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;
    let base = Path::new(".");
    let roots: Vec<&Path> = opts.roots.iter().map(PathBuf::as_path).collect();

    if opts.locks {
        let table = lock_table(base, &roots).map_err(|e| format!("scan failed: {e}"))?;
        println!("rank  name                  acquisition sites");
        for (rank, (names, count)) in &table {
            let name = names.iter().cloned().collect::<Vec<_>>().join(", ");
            println!("{rank:>4}  {name:<20}  {count}");
        }
        return Ok(true);
    }

    let findings = lint_tree(base, &roots).map_err(|e| format!("scan failed: {e}"))?;

    if opts.update_baseline {
        let text = Baseline::render(&findings);
        std::fs::write(&opts.baseline_path, text)
            .map_err(|e| format!("writing {}: {e}", opts.baseline_path.display()))?;
        println!(
            "mlake-lint: wrote {} entries to {}",
            findings.len(),
            opts.baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = if opts.use_baseline {
        match std::fs::read_to_string(&opts.baseline_path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => return Err(format!("reading {}: {e}", opts.baseline_path.display())),
        }
    } else {
        Baseline::default()
    };

    let report = baseline.matches(&findings);

    if let Some(json_path) = &opts.json_path {
        // Per-finding baselined flags: a finding is baselined iff it is
        // not in the (multiset-matched) new list.
        let mut new_left = report.new_findings.clone();
        let baselined: Vec<bool> = findings
            .iter()
            .map(|f| match new_left.iter().position(|n| n == f) {
                Some(k) => {
                    new_left.remove(k);
                    false
                }
                None => true,
            })
            .collect();
        let text = json::render(&findings, &baselined, &report.stale);
        if json_path.as_os_str() == "-" {
            print!("{text}");
        } else {
            std::fs::write(json_path, text)
                .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
        }
    }

    for f in &report.new_findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.pass, f.message);
        for (i, hop) in f.chain.iter().enumerate() {
            println!("    {}{hop}", if i == 0 { "chain: " } else { "  → " });
        }
    }
    for e in &report.stale {
        eprintln!(
            "mlake-lint: stale baseline entry (fixed — delete from {}): {}\t{}\t{}",
            opts.baseline_path.display(),
            e.pass,
            e.path,
            e.snippet
        );
    }
    let allowed = findings.len() - report.new_findings.len();
    println!(
        "mlake-lint: {} findings ({} new, {} baselined), {} stale baseline entries",
        findings.len(),
        report.new_findings.len(),
        allowed,
        report.stale.len()
    );
    Ok(report.new_findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("mlake-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
