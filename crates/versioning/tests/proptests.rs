//! Property-based tests for versioning: arborescence validity and
//! optimality on random graphs, recovery well-formedness on random lakes.

use mlake_datagen::{generate_lake, LakeSpec};
use mlake_nn::Model;
use mlake_tensor::Pcg64;
use mlake_versioning::arborescence::{
    arborescence_weight, minimum_arborescence, DirectedEdge,
};
use mlake_versioning::recover::{recover_graph, RecoveryOptions};
use proptest::prelude::*;

fn complete_graph(n: usize, seed: u64) -> Vec<DirectedEdge> {
    let mut rng = Pcg64::new(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                edges.push(DirectedEdge {
                    from: a,
                    to: b,
                    weight: rng.next_f32() * 10.0,
                });
            }
        }
    }
    edges
}

/// Brute-force optimal arborescence weight for tiny n via parent-vector
/// enumeration (each non-root picks any parent; check acyclicity).
fn brute_force_weight(n: usize, edges: &[DirectedEdge], root: usize) -> Option<f32> {
    fn weight_of(parents: &[usize], edges: &[DirectedEdge], root: usize) -> Option<f32> {
        // Reject cycles.
        for start in 0..parents.len() {
            let mut v = start;
            let mut hops = 0;
            while v != root {
                v = parents[v];
                hops += 1;
                if hops > parents.len() {
                    return None;
                }
            }
        }
        arborescence_weight(parents, edges, root)
    }
    let mut best: Option<f32> = None;
    let mut parents = vec![root; n];
    fn rec(
        i: usize,
        n: usize,
        root: usize,
        parents: &mut Vec<usize>,
        edges: &[DirectedEdge],
        best: &mut Option<f32>,
    ) {
        if i == n {
            if let Some(w) = weight_of(parents, edges, root) {
                if best.is_none_or(|b| w < b) {
                    *best = Some(w);
                }
            }
            return;
        }
        if i == root {
            rec(i + 1, n, root, parents, edges, best);
            return;
        }
        for p in 0..n {
            if p != i {
                parents[i] = p;
                rec(i + 1, n, root, parents, edges, best);
            }
        }
        parents[i] = root;
    }
    rec(0, n, root, &mut parents, edges, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Edmonds output is always a valid arborescence on complete graphs.
    #[test]
    fn edmonds_output_is_valid(n in 2usize..10, seed in any::<u64>()) {
        let edges = complete_graph(n, seed);
        let parents = minimum_arborescence(n, &edges, 0).unwrap();
        prop_assert_eq!(parents.len(), n);
        prop_assert_eq!(parents[0], 0);
        for start in 0..n {
            let mut v = start;
            let mut hops = 0;
            while v != 0 {
                v = parents[v];
                hops += 1;
                prop_assert!(hops <= n, "cycle from {start}");
            }
        }
    }

    /// Edmonds matches brute force on tiny graphs (n <= 5).
    #[test]
    fn edmonds_is_optimal_on_tiny_graphs(n in 2usize..6, seed in any::<u64>()) {
        let edges = complete_graph(n, seed);
        let parents = minimum_arborescence(n, &edges, 0).unwrap();
        let got = arborescence_weight(&parents, &edges, 0).unwrap();
        let best = brute_force_weight(n, &edges, 0).unwrap();
        prop_assert!((got - best).abs() < 1e-3, "edmonds {got} vs brute {best}");
    }

    /// Recovery over random tiny lakes is always well-formed: at most one
    /// parent per child, acyclic, and every model is either a root or a
    /// child.
    #[test]
    fn recovery_wellformed_on_random_lakes(seed in 0u64..50) {
        let gt = generate_lake(&LakeSpec {
            seed,
            num_base_models: 2,
            derivations_per_base: 2,
            max_depth: 2,
            lm_every: 2,
            train_examples: 40,
            corpus_len: 400,
            epochs: 4,
            ..LakeSpec::default()
        });
        let models: Vec<Model> = gt.models.iter().map(|m| m.model.clone()).collect();
        let graph = recover_graph(&models, None, &RecoveryOptions::default());
        prop_assert_eq!(graph.num_models, models.len());
        for i in 0..models.len() {
            let parents = graph.edges.iter().filter(|e| e.child == i).count();
            prop_assert!(parents <= 1);
            prop_assert!(graph.depth_of(i) <= models.len());
            let is_root = graph.roots.contains(&i);
            let is_child = parents == 1;
            prop_assert!(is_root || is_child, "model {i} is orphaned");
        }
    }
}
