//! Recovered version graphs and their evaluation against ground truth.

use mlake_nn::TransformKind;
use serde::{Deserialize, Serialize};

/// One recovered derivation edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveredEdge {
    /// Predicted (primary) parent index.
    pub parent: usize,
    /// Child index.
    pub child: usize,
    /// Predicted derivation operator.
    pub kind: TransformKind,
    /// Predicted second parent (stitch/merge).
    pub second_parent: Option<usize>,
    /// Recovery confidence score (smaller distance = higher confidence; this
    /// is the raw distance, kept for diagnostics).
    pub distance: f32,
}

/// A recovered version graph over `num_models` models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveredGraph {
    /// Number of models considered.
    pub num_models: usize,
    /// Recovered edges (at most one primary edge per child).
    pub edges: Vec<RecoveredEdge>,
    /// Indices the recovery designated as roots (base models).
    pub roots: Vec<usize>,
}

impl RecoveredGraph {
    /// Recovered primary parent of `i`, if any.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        self.edges.iter().find(|e| e.child == i).map(|e| e.parent)
    }

    /// Children of `i` through primary edges.
    pub fn children_of(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.parent == i)
            .map(|e| e.child)
            .collect()
    }

    /// Depth of `i` (0 for roots / orphans). Safe on malformed graphs — caps
    /// at `num_models` hops.
    pub fn depth_of(&self, i: usize) -> usize {
        let mut depth = 0;
        let mut cur = i;
        while let Some(p) = self.parent_of(cur) {
            depth += 1;
            cur = p;
            if depth > self.num_models {
                break;
            }
        }
        depth
    }
}

/// Ground-truth view needed for evaluation (decoupled from `mlake-datagen`
/// so this crate stays dependency-light; the bench harness adapts).
#[derive(Debug, Clone, PartialEq)]
pub struct TrueEdge {
    /// True parent.
    pub parent: usize,
    /// True child.
    pub child: usize,
    /// True operator.
    pub kind: TransformKind,
    /// True second parent, if any.
    pub second_parent: Option<usize>,
}

/// Evaluation of a recovered graph against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphEval {
    /// Fraction of recovered (undirected) pairs that are true pairs.
    pub edge_precision: f32,
    /// Fraction of true pairs recovered (as undirected pairs).
    pub edge_recall: f32,
    /// Harmonic mean of precision and recall.
    pub edge_f1: f32,
    /// Among correctly recovered pairs, fraction with correct direction.
    pub direction_accuracy: f32,
    /// Among correctly recovered directed edges, fraction with correct kind.
    pub kind_accuracy: f32,
    /// Number of recovered edges.
    pub recovered: usize,
    /// Number of true edges.
    pub truth: usize,
}

/// Scores `graph` against `truth` edges.
pub fn evaluate(graph: &RecoveredGraph, truth: &[TrueEdge]) -> GraphEval {
    let norm = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    let true_pairs: std::collections::HashSet<(usize, usize)> =
        truth.iter().map(|e| norm(e.parent, e.child)).collect();
    let rec_pairs: Vec<(usize, usize)> = graph
        .edges
        .iter()
        .map(|e| norm(e.parent, e.child))
        .collect();
    let hits = rec_pairs.iter().filter(|p| true_pairs.contains(p)).count();
    let precision = if rec_pairs.is_empty() {
        0.0
    } else {
        hits as f32 / rec_pairs.len() as f32
    };
    let recall = if true_pairs.is_empty() {
        0.0
    } else {
        hits as f32 / true_pairs.len() as f32
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };

    // Direction + kind among matched pairs.
    let mut dir_hits = 0usize;
    let mut dir_total = 0usize;
    let mut kind_hits = 0usize;
    let mut kind_total = 0usize;
    for re in &graph.edges {
        if let Some(te) = truth
            .iter()
            .find(|t| norm(t.parent, t.child) == norm(re.parent, re.child))
        {
            dir_total += 1;
            if te.parent == re.parent && te.child == re.child {
                dir_hits += 1;
                kind_total += 1;
                if te.kind == re.kind {
                    kind_hits += 1;
                }
            }
        }
    }
    GraphEval {
        edge_precision: precision,
        edge_recall: recall,
        edge_f1: f1,
        direction_accuracy: if dir_total == 0 {
            0.0
        } else {
            dir_hits as f32 / dir_total as f32
        },
        kind_accuracy: if kind_total == 0 {
            0.0
        } else {
            kind_hits as f32 / kind_total as f32
        },
        recovered: graph.edges.len(),
        truth: truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(parent: usize, child: usize, kind: TransformKind) -> RecoveredEdge {
        RecoveredEdge {
            parent,
            child,
            kind,
            second_parent: None,
            distance: 0.1,
        }
    }

    fn te(parent: usize, child: usize, kind: TransformKind) -> TrueEdge {
        TrueEdge {
            parent,
            child,
            kind,
            second_parent: None,
        }
    }

    #[test]
    fn perfect_recovery_scores_one() {
        let truth = vec![te(0, 1, TransformKind::FineTune), te(1, 2, TransformKind::Edit)];
        let graph = RecoveredGraph {
            num_models: 3,
            edges: vec![re(0, 1, TransformKind::FineTune), re(1, 2, TransformKind::Edit)],
            roots: vec![0],
        };
        let ev = evaluate(&graph, &truth);
        assert_eq!(ev.edge_precision, 1.0);
        assert_eq!(ev.edge_recall, 1.0);
        assert_eq!(ev.edge_f1, 1.0);
        assert_eq!(ev.direction_accuracy, 1.0);
        assert_eq!(ev.kind_accuracy, 1.0);
    }

    #[test]
    fn reversed_direction_counts_as_pair_not_direction() {
        let truth = vec![te(0, 1, TransformKind::FineTune)];
        let graph = RecoveredGraph {
            num_models: 2,
            edges: vec![re(1, 0, TransformKind::FineTune)],
            roots: vec![1],
        };
        let ev = evaluate(&graph, &truth);
        assert_eq!(ev.edge_recall, 1.0);
        assert_eq!(ev.direction_accuracy, 0.0);
        assert_eq!(ev.kind_accuracy, 0.0);
    }

    #[test]
    fn wrong_kind_counted() {
        let truth = vec![te(0, 1, TransformKind::Lora)];
        let graph = RecoveredGraph {
            num_models: 2,
            edges: vec![re(0, 1, TransformKind::Edit)],
            roots: vec![0],
        };
        let ev = evaluate(&graph, &truth);
        assert_eq!(ev.direction_accuracy, 1.0);
        assert_eq!(ev.kind_accuracy, 0.0);
    }

    #[test]
    fn empty_graphs() {
        let graph = RecoveredGraph {
            num_models: 2,
            edges: vec![],
            roots: vec![0, 1],
        };
        let ev = evaluate(&graph, &[]);
        assert_eq!(ev.edge_precision, 0.0);
        assert_eq!(ev.edge_recall, 0.0);
        assert_eq!(ev.edge_f1, 0.0);
    }

    #[test]
    fn graph_navigation() {
        let graph = RecoveredGraph {
            num_models: 3,
            edges: vec![re(0, 1, TransformKind::FineTune), re(1, 2, TransformKind::Edit)],
            roots: vec![0],
        };
        assert_eq!(graph.parent_of(2), Some(1));
        assert_eq!(graph.parent_of(0), None);
        assert_eq!(graph.children_of(0), vec![1]);
        assert_eq!(graph.depth_of(2), 2);
        assert_eq!(graph.depth_of(0), 0);
    }
}
