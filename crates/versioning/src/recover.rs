//! End-to-end version-graph recovery.
//!
//! Two modes:
//! * **known roots** — hubs usually know which models are foundation models;
//!   recovery grows a minimum spanning forest from them (Prim-style) inside
//!   each architecture group;
//! * **blind** — no roots known: a virtual root with uniform edge cost is
//!   added and Chu-Liu/Edmonds picks roots and tree jointly; direction is
//!   biased by irreversibility heuristics (pruning only adds zeros,
//!   quantisation only removes distinct values) plus kurtosis drift.
//!
//! Cross-architecture children (distilled students) carry no weight lineage;
//! they are attached by behavioural proximity when a probe set is supplied —
//! exactly the intrinsic/extrinsic complementarity the paper's §2 motivates.

use crate::arborescence::{minimum_arborescence, DirectedEdge};
use crate::delta::classify_transform;
use crate::graph::{RecoveredEdge, RecoveredGraph};
use mlake_fingerprint::extrinsic::ProbeSet;
use mlake_nn::{Model, TransformKind};
use mlake_tensor::{stats, vector};
use std::collections::BTreeMap;

/// Recovery parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOptions {
    /// Indices of known base models; `None` switches to blind mode.
    pub known_roots: Option<Vec<usize>>,
    /// Behavioural-distance ceiling for attaching distilled children.
    pub distill_threshold: f32,
    /// Virtual-root edge cost in blind mode (should exceed typical
    /// parent-child weight distances but stay below unrelated-pair ones).
    pub virtual_root_cost: f32,
    /// Whether to search for stitch/merge second parents.
    pub detect_second_parents: bool,
    /// Weight-distance ceiling for accepting a lineage edge: two models
    /// further apart than this are not weight-continuous (independently
    /// trained, e.g. distilled students), so the child starts a new tree and
    /// is handed to behavioural attachment instead.
    pub max_weight_distance: f32,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            known_roots: None,
            // Measured TV distance of distilled students to their teachers
            // sits around 0.05-0.15; unrelated model pairs at 0.3+.
            distill_threshold: 0.25,
            virtual_root_cost: 0.6,
            detect_second_parents: true,
            max_weight_distance: 0.9,
        }
    }
}

/// Symmetric weight distance for architecture-compatible models.
fn weight_distance(a: &[f32], b: &[f32]) -> f32 {
    let denom = vector::l2_norm(a).max(vector::l2_norm(b)).max(1e-12);
    vector::l2_distance(a, b) / denom
}

/// Layer-aware weight distance for same-architecture MLPs: the mean of
/// per-layer (capped) relative changes, discounted by the fraction of layers
/// that are *bitwise identical*. Identical layers are near-proof of shared
/// lineage (LoRA, edits and stitches leave most layers untouched), which the
/// flat norm cannot see — a single wholesale-replaced layer would otherwise
/// put a LoRA child as far from its parent as a stranger.
fn model_distance(ma: &Model, mb: &Model, pa: &[f32], pb: &[f32]) -> f32 {
    if let (Some(a), Some(b)) = (ma.as_mlp(), mb.as_mlp()) {
        if a.architecture() == b.architecture() {
            let layers = a.num_layers();
            let mut acc = 0.0f32;
            let mut identical = 0usize;
            for l in 0..layers {
                let wa = a.weight(l).as_slice();
                let wb = b.weight(l).as_slice();
                let d = vector::l2_distance(wa, wb)
                    / vector::l2_norm(wa).max(vector::l2_norm(wb)).max(1e-12);
                if d < 1e-7 {
                    identical += 1;
                }
                acc += d.min(1.0);
            }
            let mean = acc / layers.max(1) as f32;
            let bonus = 0.5 * identical as f32 / layers.max(1) as f32;
            return (mean - bonus).max(0.0);
        }
    }
    weight_distance(pa, pb)
}

/// Direction penalty for hypothesised edge `u → v` (0 = consistent with
/// being the parent; positive = suspicious). Irreversible-operation
/// heuristics plus kurtosis drift (Horwitz et al.).
fn direction_penalty(pu: &[f32], pv: &[f32]) -> f32 {
    let zero = |p: &[f32]| p.iter().filter(|&&w| w == 0.0).count() as f32 / p.len().max(1) as f32;
    let mut penalty = 0.0;
    // Pruned children have more zeros than parents; an edge from the sparser
    // node to the denser one runs the operation backwards.
    if zero(pu) > zero(pv) + 0.05 {
        penalty += 0.3;
    }
    // Quantised children have fewer distinct values.
    let distinct = |p: &[f32]| {
        let mut v: Vec<u32> = p.iter().map(|w| w.to_bits()).collect();
        v.sort_unstable();
        v.dedup();
        v.len() as f32 / p.len().max(1) as f32
    };
    if distinct(pu) + 0.05 < distinct(pv) {
        penalty += 0.3;
    }
    // Kurtosis drifts upward along derivation chains (fine-tuning sharpens
    // tails); mildly prefer the lower-kurtosis node as parent.
    let ku = stats::kurtosis(pu);
    let kv = stats::kurtosis(pv);
    if ku > kv + 0.5 {
        penalty += 0.1;
    }
    penalty
}

/// Recovers the version graph of `models`. `probes` enables distilled-child
/// attachment and is optional (intrinsic-only recovery without it).
pub fn recover_graph(
    models: &[Model],
    probes: Option<&ProbeSet>,
    opts: &RecoveryOptions,
) -> RecoveredGraph {
    let n = models.len();
    let params: Vec<Vec<f32>> = models.iter().map(Model::flat_params).collect();
    // ---- 1. Architecture groups -----------------------------------------
    // BTreeMap: group iteration order must be deterministic so recovery is
    // bit-reproducible (roots/edges are appended per group).
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, m) in models.iter().enumerate() {
        groups
            .entry(m.architecture().signature())
            .or_default()
            .push(i);
    }
    let mut edges: Vec<RecoveredEdge> = Vec::new();
    let mut roots: Vec<usize> = Vec::new();

    for members in groups.values() {
        if members.len() == 1 {
            roots.push(members[0]);
            continue;
        }
        let dist = |a: usize, b: usize| {
            model_distance(&models[a], &models[b], &params[a], &params[b])
        };
        match &opts.known_roots {
            Some(known) => {
                // Prim-style forest from known roots (fall back to the group
                // medoid when no known root lives in this group).
                let mut attached: Vec<usize> =
                    members.iter().copied().filter(|i| known.contains(i)).collect();
                if attached.is_empty() {
                    let medoid = members
                        .iter()
                        .min_by(|&&a, &&b| {
                            let sa: f32 = members.iter().map(|&x| dist(a, x)).sum();
                            let sb: f32 = members.iter().map(|&x| dist(b, x)).sum();
                            sa.total_cmp(&sb)
                        })
                        .copied()
                        .unwrap_or(members[0]);
                    attached.push(medoid);
                }
                roots.extend(attached.iter().copied());
                let mut unattached: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|i| !attached.contains(i))
                    .collect();
                while !unattached.is_empty() {
                    let mut best: Option<(f32, usize, usize)> = None;
                    for &v in &unattached {
                        for &u in &attached {
                            let d = dist(u, v);
                            if best.is_none_or(|(bd, _, _)| d < bd) {
                                best = Some((d, u, v));
                            }
                        }
                    }
                    let Some((d, u, v)) = best else {
                        // Defensive: an empty frontier can only mean attached
                        // is empty, which the medoid fallback rules out. Treat
                        // every remaining member as its own root rather than
                        // panicking.
                        roots.extend(unattached.iter().copied());
                        break;
                    };
                    if d > opts.max_weight_distance {
                        // No weight continuity to any tree: `v` starts a new
                        // component (an orphan root — a distilled student or
                        // unrelated upload). Its own descendants can still
                        // attach to it in later rounds.
                        roots.push(v);
                        attached.push(v);
                        unattached.retain(|&x| x != v);
                        continue;
                    }
                    edges.push(RecoveredEdge {
                        parent: u,
                        child: v,
                        kind: classify_transform(&models[u], &models[v]),
                        second_parent: None,
                        distance: d,
                    });
                    attached.push(v);
                    unattached.retain(|&x| x != v);
                }
            }
            None => {
                // Blind: Edmonds with a virtual root (local index m = group
                // size) over direction-penalised distances.
                let m = members.len();
                let mut dedges = Vec::with_capacity(m * m + m);
                for (li, &gi) in members.iter().enumerate() {
                    dedges.push(DirectedEdge {
                        from: m,
                        to: li,
                        weight: opts.virtual_root_cost,
                    });
                    for (lj, &gj) in members.iter().enumerate() {
                        if li == lj {
                            continue;
                        }
                        let d = dist(gi, gj);
                        if d > opts.max_weight_distance {
                            continue; // not weight-continuous: leave to the virtual root
                        }
                        dedges.push(DirectedEdge {
                            from: li,
                            to: lj,
                            weight: d + direction_penalty(&params[gi], &params[gj]),
                        });
                    }
                }
                if let Some(parents) = minimum_arborescence(m + 1, &dedges, m) {
                    for (li, &p) in parents.iter().enumerate().take(m) {
                        let child = members[li];
                        if p == m {
                            roots.push(child);
                        } else {
                            let parent = members[p];
                            edges.push(RecoveredEdge {
                                parent,
                                child,
                                kind: classify_transform(&models[parent], &models[child]),
                                second_parent: None,
                                distance: dist(parent, child),
                            });
                        }
                    }
                } else {
                    roots.extend(members.iter().copied());
                }
            }
        }
    }

    // ---- 2. Distilled-child attachment across architectures --------------
    if let Some(probes) = probes {
        let known = opts.known_roots.clone().unwrap_or_default();
        let orphan_roots: Vec<usize> = roots
            .iter()
            .copied()
            .filter(|r| !known.contains(r))
            .collect();
        for r in orphan_roots {
            let mut best: Option<(f32, usize)> = None;
            for cand in 0..n {
                // Never attach to self or to own descendants (acyclicity).
                if cand == r || is_descendant(&edges, r, cand) {
                    continue;
                }
                if let Ok(d) = probes.behavioral_distance(&models[cand], &models[r]) {
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, cand));
                    }
                }
            }
            if let Some((d, parent)) = best {
                if d < opts.distill_threshold {
                    edges.push(RecoveredEdge {
                        parent,
                        child: r,
                        kind: TransformKind::Distill,
                        second_parent: None,
                        distance: d,
                    });
                    roots.retain(|&x| x != r);
                }
            }
        }
    }

    // ---- 3. Second-parent detection (stitch / merge) ---------------------
    if opts.detect_second_parents {
        for e in &mut edges {
            match (&models[e.parent], &models[e.child]) {
                (Model::Mlp(p), Model::Mlp(c)) if p.architecture() == c.architecture() => {
                    // Layers that mismatch the parent but match another model
                    // wholesale indicate stitching.
                    let mismatched: Vec<usize> = (0..p.num_layers())
                        .filter(|&l| {
                            vector::l2_distance(p.weight(l).as_slice(), c.weight(l).as_slice())
                                > 1e-5
                        })
                        .collect();
                    if mismatched.is_empty() || mismatched.len() == p.num_layers() {
                        continue;
                    }
                    'candidates: for (k, other) in models.iter().enumerate() {
                        if k == e.parent || k == e.child {
                            continue;
                        }
                        let Some(o) = other.as_mlp() else { continue };
                        if o.architecture() != p.architecture() {
                            continue;
                        }
                        for &l in &mismatched {
                            if vector::l2_distance(
                                o.weight(l).as_slice(),
                                c.weight(l).as_slice(),
                            ) > 1e-5
                            {
                                continue 'candidates;
                            }
                        }
                        e.second_parent = Some(k);
                        e.kind = TransformKind::Stitch;
                        break;
                    }
                }
                (Model::Lm(p), Model::Lm(c))
                    if p.vocab() == c.vocab() && p.order() == c.order() =>
                {
                    // Merge detection: child ≈ (1-λ)·parent + λ·q.
                    let pp = p.flat_params();
                    let cc = c.flat_params();
                    let delta: Vec<f32> = cc.iter().zip(&pp).map(|(a, b)| a - b).collect();
                    if vector::l2_norm(&delta) < 1e-6 {
                        continue;
                    }
                    for (k, other) in models.iter().enumerate() {
                        if k == e.parent || k == e.child {
                            continue;
                        }
                        let Some(q) = other.as_lm() else { continue };
                        if q.vocab() != p.vocab() || q.order() != p.order() {
                            continue;
                        }
                        let qq = q.flat_params();
                        let dir: Vec<f32> = qq.iter().zip(&pp).map(|(a, b)| a - b).collect();
                        let dn = vector::dot(&dir, &dir);
                        if dn < 1e-9 {
                            continue;
                        }
                        let lambda = vector::dot(&delta, &dir) / dn;
                        if !(0.05..=0.95).contains(&lambda) {
                            continue;
                        }
                        let mut resid = 0.0f64;
                        for ((&d, &g), _) in delta.iter().zip(&dir).zip(&cc) {
                            let r = d - lambda * g;
                            resid += f64::from(r) * f64::from(r);
                        }
                        let rel = (resid.sqrt() as f32) / vector::l2_norm(&cc).max(1e-9);
                        if rel < 0.02 {
                            e.second_parent = Some(k);
                            e.kind = TransformKind::Stitch;
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    RecoveredGraph {
        num_models: n,
        edges,
        roots,
    }
}

fn is_descendant(edges: &[RecoveredEdge], ancestor: usize, node: usize) -> bool {
    let mut cur = node;
    let mut hops = 0;
    while let Some(e) = edges.iter().find(|e| e.child == cur) {
        if e.parent == ancestor {
            return true;
        }
        cur = e.parent;
        hops += 1;
        if hops > edges.len() {
            return false;
        }
    }
    false
}

/// Random-parent baseline: every non-root model gets a uniformly random
/// earlier model as parent with a random kind. The floor for E1.
pub fn random_baseline(
    num_models: usize,
    num_roots: usize,
    seed: u64,
) -> RecoveredGraph {
    let mut rng = mlake_tensor::Pcg64::new(seed);
    let mut edges = Vec::new();
    for child in num_roots..num_models {
        let parent = rng.index(child.max(1));
        let kind = TransformKind::ALL[rng.index(TransformKind::ALL.len())];
        edges.push(RecoveredEdge {
            parent,
            child,
            kind,
            second_parent: None,
            distance: 1.0,
        });
    }
    RecoveredGraph {
        num_models,
        edges,
        roots: (0..num_roots.min(num_models)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{evaluate, TrueEdge};
    use mlake_datagen::lakegen::{generate_lake, LakeSpec};
    use mlake_tensor::Seed;

    fn lake_and_probes() -> (mlake_datagen::GroundTruth, ProbeSet) {
        let gt = generate_lake(&LakeSpec::tiny(77));
        let probes = ProbeSet::standard(
            8,  // tabular dim (matches TabularSpec::default)
            24, 2.5, 24, 16, 2, Seed::new(5),
        );
        (gt, probes)
    }

    fn truth_edges(gt: &mlake_datagen::GroundTruth) -> Vec<TrueEdge> {
        gt.edges
            .iter()
            .map(|e| TrueEdge {
                parent: e.parent,
                child: e.child,
                kind: e.kind,
                second_parent: e.second_parent,
            })
            .collect()
    }

    #[test]
    fn known_roots_recovery_beats_random() {
        let (gt, probes) = lake_and_probes();
        let models: Vec<Model> = gt.models.iter().map(|m| m.model.clone()).collect();
        let known: Vec<usize> = (0..gt.models.len())
            .filter(|&i| gt.models[i].depth == 0)
            .collect();
        let graph = recover_graph(
            &models,
            Some(&probes),
            &RecoveryOptions {
                known_roots: Some(known.clone()),
                ..Default::default()
            },
        );
        let truth = truth_edges(&gt);
        let ev = evaluate(&graph, &truth);
        let rand = random_baseline(models.len(), known.len(), 3);
        let ev_rand = evaluate(&rand, &truth);
        assert!(
            ev.edge_f1 > ev_rand.edge_f1 + 0.2,
            "recovered F1 {} vs random {}",
            ev.edge_f1,
            ev_rand.edge_f1
        );
        assert!(ev.edge_f1 > 0.5, "F1 {}", ev.edge_f1);
    }

    #[test]
    fn blind_recovery_is_reasonable() {
        let (gt, probes) = lake_and_probes();
        let models: Vec<Model> = gt.models.iter().map(|m| m.model.clone()).collect();
        let graph = recover_graph(&models, Some(&probes), &RecoveryOptions::default());
        let ev = evaluate(&graph, &truth_edges(&gt));
        assert!(ev.edge_recall > 0.3, "recall {}", ev.edge_recall);
    }

    #[test]
    fn recovered_graph_is_acyclic() {
        let (gt, probes) = lake_and_probes();
        let models: Vec<Model> = gt.models.iter().map(|m| m.model.clone()).collect();
        let graph = recover_graph(&models, Some(&probes), &RecoveryOptions::default());
        for i in 0..models.len() {
            assert!(graph.depth_of(i) <= models.len(), "cycle at {i}");
        }
        // At most one primary parent per child.
        for i in 0..models.len() {
            let parents = graph.edges.iter().filter(|e| e.child == i).count();
            assert!(parents <= 1, "model {i} has {parents} parents");
        }
    }

    #[test]
    fn random_baseline_shape() {
        let g = random_baseline(10, 3, 1);
        assert_eq!(g.edges.len(), 7);
        assert_eq!(g.roots, vec![0, 1, 2]);
        for e in &g.edges {
            assert!(e.parent < e.child);
        }
    }

    #[test]
    fn empty_and_singleton_lakes() {
        let g = recover_graph(&[], None, &RecoveryOptions::default());
        assert!(g.edges.is_empty());
        let (gt, _) = lake_and_probes();
        let one = vec![gt.models[0].model.clone()];
        let g1 = recover_graph(&one, None, &RecoveryOptions::default());
        assert!(g1.edges.is_empty());
        assert_eq!(g1.roots, vec![0]);
    }
}
