//! Weight-delta forensics: read the derivation operator off the delta.
//!
//! Each operator in `mlake-nn::transform` leaves a distinct signature
//! (see that module's table); [`DeltaFeatures`] measures the signatures and
//! [`classify_transform`] maps them to a [`TransformKind`] prediction.

use mlake_nn::{Model, TransformKind};
use mlake_tensor::{linalg, vector};

/// Measured properties of the delta between an (assumed) parent and child.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFeatures {
    /// `‖θ_c − θ_p‖ / ‖θ_p‖`; `None` when parameter counts differ.
    pub relative_norm: Option<f32>,
    /// Fraction of parameters that changed at all.
    pub changed_fraction: f32,
    /// Per-layer relative change (MLPs only; empty otherwise).
    pub layer_changes: Vec<f32>,
    /// Effective rank of the single changed layer's delta (MLPs with exactly
    /// one changed layer only).
    pub changed_layer_rank: Option<usize>,
    /// Zero-weight fraction in child minus parent (pruning signal).
    pub sparsity_gain: f32,
    /// Ratio of distinct weight values child/parent (quantisation signal;
    /// `1.0` when unchanged).
    pub distinct_ratio: f32,
    /// For LMs: fraction of context rows that changed.
    pub changed_rows: Option<f32>,
}

/// Detects whether every weight tensor of an MLP sits on a symmetric uniform
/// quantisation lattice, returning the bit width if so. Trained
/// (continuous-valued) weights essentially never do; quantised ones do by
/// construction.
pub fn lattice_bits(model: &Model) -> Option<u32> {
    let m = model.as_mlp()?;
    'bits: for bits in 2..=8u32 {
        let levels = ((1i64 << (bits - 1)) - 1) as f32;
        for l in 0..m.num_layers() {
            let w = m.weight(l).as_slice();
            let max = w.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            if max == 0.0 {
                continue;
            }
            let scale = max / levels;
            let tol = max * 1e-5;
            if !w
                .iter()
                .all(|&x| ((x / scale).round() * scale - x).abs() <= tol)
            {
                continue 'bits;
            }
        }
        return Some(bits);
    }
    None
}

fn zero_fraction(params: &[f32]) -> f32 {
    if params.is_empty() {
        return 0.0;
    }
    params.iter().filter(|&&w| w == 0.0).count() as f32 / params.len() as f32
}

fn distinct_count(params: &[f32]) -> usize {
    let mut v: Vec<u32> = params.iter().map(|w| w.to_bits()).collect();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Computes delta features between a candidate parent and child.
pub fn delta_features(parent: &Model, child: &Model) -> DeltaFeatures {
    let pp = parent.flat_params();
    let cp = child.flat_params();
    if pp.len() != cp.len() {
        return DeltaFeatures {
            relative_norm: None,
            changed_fraction: 1.0,
            layer_changes: Vec::new(),
            changed_layer_rank: None,
            sparsity_gain: 0.0,
            distinct_ratio: 1.0,
            changed_rows: None,
        };
    }
    let denom = vector::l2_norm(&pp).max(1e-12);
    let relative_norm = Some(vector::l2_distance(&pp, &cp) / denom);
    let changed = pp
        .iter()
        .zip(&cp)
        .filter(|(a, b)| (*a - *b).abs() > 1e-7)
        .count();
    let changed_fraction = changed as f32 / pp.len().max(1) as f32;
    let sparsity_gain = zero_fraction(&cp) - zero_fraction(&pp);
    let distinct_ratio = distinct_count(&cp) as f32 / distinct_count(&pp).max(1) as f32;

    let (layer_changes, changed_layer_rank) = match (parent.as_mlp(), child.as_mlp()) {
        (Some(p), Some(c)) if p.num_layers() == c.num_layers() => {
            let mut changes = Vec::with_capacity(p.num_layers());
            for l in 0..p.num_layers() {
                let pw = p.weight(l).as_slice();
                let cw = c.weight(l).as_slice();
                let d = vector::l2_distance(pw, cw);
                changes.push(d / vector::l2_norm(pw).max(1e-12));
            }
            let changed_layers: Vec<usize> = changes
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > 1e-5)
                .map(|(i, _)| i)
                .collect();
            let rank = if changed_layers.len() == 1 {
                let l = changed_layers[0];
                let delta = c.weight(l).sub(p.weight(l)).ok();
                delta.and_then(|d| linalg::effective_rank(&d, 0.05).ok())
            } else {
                None
            };
            (changes, rank)
        }
        _ => (Vec::new(), None),
    };

    let changed_rows = match (parent.as_lm(), child.as_lm()) {
        (Some(p), Some(c)) if p.vocab() == c.vocab() && p.order() == c.order() => {
            let vocab = p.vocab();
            let pf = p.flat_params();
            let cf = c.flat_params();
            let rows = pf.len() / vocab;
            let changed = (0..rows)
                .filter(|&r| {
                    let a = &pf[r * vocab..(r + 1) * vocab];
                    let b = &cf[r * vocab..(r + 1) * vocab];
                    vector::l2_distance(a, b) > 1e-5
                })
                .count();
            Some(changed as f32 / rows.max(1) as f32)
        }
        _ => None,
    };

    DeltaFeatures {
        relative_norm,
        changed_fraction,
        layer_changes,
        changed_layer_rank,
        sparsity_gain,
        distinct_ratio,
        changed_rows,
    }
}

/// Predicts the derivation operator from delta features.
///
/// Decision order exploits signature specificity (most specific first):
/// quantisation (lattice collapse) → pruning (sparsity gain) → single-layer
/// low-rank (edit/LoRA) → stitch (some layers identical, others replaced
/// wholesale) → fine-tune (dense small delta) → distill (incompatible or
/// weight-unrelated).
pub fn classify_transform(parent: &Model, child: &Model) -> TransformKind {
    let f = delta_features(parent, child);
    let Some(rel) = f.relative_norm else {
        // Architecture changed: only behaviour transfer can explain lineage.
        return TransformKind::Distill;
    };
    // Quantisation: child weights snap onto a symmetric uniform lattice that
    // the parent's do not. Checked before pruning because coarse quantisation
    // also zeroes small weights (a sparsity gain that would otherwise read as
    // pruning), while pruning never produces a lattice.
    if f.changed_fraction > 0.0 && lattice_bits(child).is_some() && lattice_bits(parent).is_none()
    {
        return TransformKind::Quantize;
    }
    if f.sparsity_gain > 0.1 {
        return TransformKind::Prune;
    }
    if f.distinct_ratio < 0.25 && f.sparsity_gain.abs() < 0.3 && f.changed_fraction > 0.5 {
        return TransformKind::Quantize;
    }
    if !f.layer_changes.is_empty() {
        let changed_layers: Vec<usize> = f
            .layer_changes
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 1e-5)
            .map(|(i, _)| i)
            .collect();
        if changed_layers.len() == 1 {
            let l = changed_layers[0];
            // The delta's spectrum decides: exact rank one (σ₂ ≈ 0) is a
            // surgical edit; rank strictly below the layer's full rank is a
            // LoRA adapter (any magnitude); full rank means the layer was
            // replaced wholesale — a stitch.
            if let (Some(p), Some(c)) = (parent.as_mlp(), child.as_mlp()) {
                if let Ok(delta) = c.weight(l).sub(p.weight(l)) {
                    let min_dim = delta.rows().min(delta.cols());
                    if let Ok(svs) = linalg::singular_values(&delta, min_dim) {
                        let s1 = svs.first().copied().unwrap_or(0.0);
                        let s2 = svs.get(1).copied().unwrap_or(0.0);
                        // Edits are *exactly* rank one; in f32 the measured
                        // σ₂/σ₁ noise floor sits around 2e-4, so below 5e-4
                        // is rank one. Caveat (visible in E1b): a rank-1
                        // LoRA adapter is mathematically rank one too — not
                        // separable from the delta spectrum alone.
                        if s1 > 0.0 && s2 / s1 < 5e-4 {
                            return TransformKind::Edit;
                        }
                        let rank = svs.iter().filter(|&&s| s >= 0.05 * s1).count();
                        if s1 > 0.0 && rank < min_dim {
                            return TransformKind::Lora;
                        }
                    }
                }
            }
            if f.layer_changes[l] > 0.6 {
                // Full-rank wholesale replacement with all other layers
                // bitwise identical: a stitch of two parents.
                return TransformKind::Stitch;
            }
        } else if changed_layers.len() < f.layer_changes.len()
            && changed_layers.iter().all(|&l| f.layer_changes[l] > 0.5)
        {
            // A strict subset of layers replaced wholesale.
            return TransformKind::Stitch;
        }
    }
    // LM-specific: an edit touches exactly one context row, so only a tiny
    // fraction of rows (and parameters) change; fine-tuning moves most rows.
    if let Some(rows) = f.changed_rows {
        if rows > 0.0 && rows <= 0.15 && f.changed_fraction < 0.2 {
            return TransformKind::Edit;
        }
    }
    if rel > 0.75 && f.changed_fraction > 0.95 {
        // Weights essentially unrelated despite compatible shapes: a
        // re-trained (distilled) sibling rather than a continued training run.
        return TransformKind::Distill;
    }
    TransformKind::FineTune
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::transform::{
        distill::{distill_mlp, DistillConfig},
        edit::{edit_mlp, EditSpec},
        finetune::finetune_mlp,
        lora::{lora_finetune, LoraConfig},
        prune::prune_mlp,
        quantize::quantize_mlp,
        stitch::stitch_mlp,
    };
    use mlake_nn::{train_mlp, Activation, LabeledData, Mlp, NgramLm, TrainConfig};
    use mlake_tensor::{init::Init, Matrix, Seed};

    fn blobs(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("delta-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![center + rng.normal() * 0.4, center + rng.normal() * 0.4]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn base() -> Model {
        let mut rng = Seed::new(71).derive("init").rng();
        let mut m = Mlp::new(vec![2, 8, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        train_mlp(&mut m, &blobs(100, 1), &TrainConfig { epochs: 15, ..Default::default() }).unwrap();
        Model::Mlp(m)
    }

    #[test]
    fn classifies_finetune() {
        let b = base();
        let (c, _) = finetune_mlp(
            b.as_mlp().unwrap(),
            &blobs(60, 9),
            &TrainConfig { epochs: 4, optimizer: mlake_nn::optim::OptimizerSpec::sgd(0.02), ..Default::default() },
        )
        .unwrap();
        assert_eq!(classify_transform(&b, &Model::Mlp(c)), TransformKind::FineTune);
    }

    #[test]
    fn classifies_edit() {
        let b = base();
        let c = edit_mlp(
            b.as_mlp().unwrap(),
            &EditSpec { layer: 0, key: vec![1.0, -0.5], value: vec![0.5; 8] },
        )
        .unwrap();
        assert_eq!(classify_transform(&b, &Model::Mlp(c)), TransformKind::Edit);
    }

    /// Richer 3-class task: rank-2 LoRA updates are genuinely rank two here
    /// (on a binary task the update collapses to near-rank-1 and becomes
    /// indistinguishable from an edit — the documented classifier caveat).
    fn blobs3(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("delta-blobs3").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 3;
            let mut x = vec![0.0f32; 4];
            x[c] = 2.0;
            for v in &mut x {
                *v += rng.normal() * 0.4;
            }
            rows.push(x);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn classifies_lora() {
        let mut rng = Seed::new(72).derive("init3").rng();
        let mut m =
            Mlp::new(vec![4, 8, 3], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        train_mlp(&mut m, &blobs3(120, 1), &TrainConfig { epochs: 15, ..Default::default() })
            .unwrap();
        let b = Model::Mlp(m);
        let (c, _) = lora_finetune(
            b.as_mlp().unwrap(),
            &blobs3(90, 5),
            &LoraConfig { layer: 0, rank: 2, epochs: 10, ..Default::default() },
        )
        .unwrap();
        assert_eq!(classify_transform(&b, &Model::Mlp(c)), TransformKind::Lora);
    }

    #[test]
    fn classifies_prune_and_quantize() {
        let b = base();
        let p = prune_mlp(b.as_mlp().unwrap(), 0.5).unwrap();
        assert_eq!(classify_transform(&b, &Model::Mlp(p)), TransformKind::Prune);
        let q = quantize_mlp(b.as_mlp().unwrap(), 4).unwrap();
        assert_eq!(classify_transform(&b, &Model::Mlp(q)), TransformKind::Quantize);
    }

    #[test]
    fn classifies_stitch() {
        let b = base();
        let mut rng = Seed::new(77).derive("init2").rng();
        let mut other =
            Mlp::new(vec![2, 8, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        train_mlp(&mut other, &blobs(100, 2), &TrainConfig { epochs: 15, ..Default::default() })
            .unwrap();
        let c = stitch_mlp(b.as_mlp().unwrap(), &other, 1).unwrap();
        assert_eq!(classify_transform(&b, &Model::Mlp(c)), TransformKind::Stitch);
    }

    #[test]
    fn classifies_distill_by_arch_change() {
        let b = base();
        let probes = Matrix::from_fn(40, 2, |r, c| ((r * 2 + c) as f32).sin() * 2.0);
        let student = distill_mlp(
            b.as_mlp().unwrap(),
            &probes,
            &DistillConfig { student_hidden: vec![6], epochs: 10, ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            classify_transform(&b, &Model::Mlp(student)),
            TransformKind::Distill
        );
    }

    #[test]
    fn lm_edit_detected() {
        let mut lm = NgramLm::new(8, 2, 0.1).unwrap();
        lm.add_counts(&(0..200).map(|i| i % 8).collect::<Vec<_>>(), 1.0).unwrap();
        let parent = Model::Lm(lm.clone());
        let mut child = lm;
        child.edit(&[3], 5, 0.9).unwrap();
        assert_eq!(classify_transform(&parent, &Model::Lm(child)), TransformKind::Edit);
    }

    #[test]
    fn lm_finetune_detected() {
        let mut lm = NgramLm::new(8, 2, 0.1).unwrap();
        lm.add_counts(&(0..300).map(|i| i % 8).collect::<Vec<_>>(), 1.0).unwrap();
        let parent = Model::Lm(lm.clone());
        let mut child = lm;
        child
            .add_counts(&(0..300).map(|i| (i * 3) % 8).collect::<Vec<_>>(), 1.0)
            .unwrap();
        assert_eq!(
            classify_transform(&parent, &Model::Lm(child)),
            TransformKind::FineTune
        );
    }

    #[test]
    fn delta_features_basics() {
        let b = base();
        let f = delta_features(&b, &b);
        assert_eq!(f.relative_norm, Some(0.0));
        assert_eq!(f.changed_fraction, 0.0);
        assert_eq!(f.layer_changes.len(), 2);
        // Cross-architecture: no relative norm.
        let mut rng = Seed::new(5).rng();
        let other = Model::Mlp(
            Mlp::new(vec![2, 4, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap(),
        );
        assert_eq!(delta_features(&b, &other).relative_norm, None);
    }
}
