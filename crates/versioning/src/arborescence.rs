//! Chu-Liu/Edmonds minimum spanning arborescence.
//!
//! Given a directed, weighted graph and a root, finds the minimum-weight set
//! of edges such that every non-root node has exactly one parent and all
//! nodes are reachable from the root. Blind version recovery adds a virtual
//! root with uniform-cost edges to every model, so root selection falls out
//! of the optimisation.

/// A directed weighted edge `from → to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectedEdge {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Edge weight (cost).
    pub weight: f32,
}

/// Finds the minimum arborescence rooted at `root` over nodes `0..n`.
///
/// Returns `parent[v]` for every node (`parent[root] = root`), or `None`
/// when some node is unreachable from the root.
pub fn minimum_arborescence(n: usize, edges: &[DirectedEdge], root: usize) -> Option<Vec<usize>> {
    if n == 0 || root >= n {
        return None;
    }
    if n == 1 {
        return Some(vec![root]);
    }
    // Recursive contraction implementation of Chu-Liu/Edmonds.
    solve(n, edges.to_vec(), root).map(|mut parents| {
        parents[root] = root;
        parents
    })
}

fn solve(n: usize, edges: Vec<DirectedEdge>, root: usize) -> Option<Vec<usize>> {
    // 1. Pick the cheapest incoming edge for every non-root node.
    let mut best_in: Vec<Option<DirectedEdge>> = vec![None; n];
    for e in &edges {
        if e.to == root || e.from == e.to {
            continue;
        }
        match best_in[e.to] {
            Some(b) if b.weight <= e.weight => {}
            _ => best_in[e.to] = Some(*e),
        }
    }
    for (v, b) in best_in.iter().enumerate() {
        if v != root && b.is_none() {
            return None; // unreachable
        }
    }
    // 2. Detect a cycle among chosen edges.
    let mut cycle_id = vec![usize::MAX; n];
    let mut visited = vec![usize::MAX; n];
    let mut cycles = 0usize;
    for start in 0..n {
        if start == root {
            continue;
        }
        let mut v = start;
        // Walk up until we hit the root, a previously visited node, or loop.
        while v != root && visited[v] == usize::MAX {
            visited[v] = start;
            v = best_in[v]?.from;
        }
        if v != root && visited[v] == start && cycle_id[v] == usize::MAX {
            // Found a new cycle through v.
            let mut u = v;
            loop {
                cycle_id[u] = cycles;
                u = best_in[u]?.from;
                if u == v {
                    break;
                }
            }
            cycles += 1;
        }
    }
    if cycles == 0 {
        // Tree found: read parents off best_in.
        let mut parents = vec![root; n];
        for v in 0..n {
            if v != root {
                parents[v] = best_in[v]?.from;
            }
        }
        return Some(parents);
    }
    // 3. Contract cycles into super-nodes.
    let mut node_map = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if cycle_id[v] == usize::MAX {
            node_map[v] = next;
            next += 1;
        }
    }
    let base = next;
    for v in 0..n {
        if cycle_id[v] != usize::MAX {
            node_map[v] = base + cycle_id[v];
        }
    }
    let new_n = base + cycles;
    let new_root = node_map[root];
    // 4. Reweight edges entering cycles and recurse.
    // Keep only the cheapest contracted edge per (from, to) pair so the
    // expansion step can map a chosen super-edge back to a unique original.
    let mut cheapest: std::collections::HashMap<(usize, usize), (DirectedEdge, DirectedEdge)> =
        std::collections::HashMap::new();
    for e in &edges {
        let (nf, nt) = (node_map[e.from], node_map[e.to]);
        if nf == nt {
            continue;
        }
        let weight = if cycle_id[e.to] != usize::MAX {
            e.weight - best_in[e.to]?.weight
        } else {
            e.weight
        };
        let contracted = DirectedEdge {
            from: nf,
            to: nt,
            weight,
        };
        match cheapest.get(&(nf, nt)) {
            Some((c, _)) if c.weight <= weight => {}
            _ => {
                cheapest.insert((nf, nt), (contracted, *e));
            }
        }
    }
    // Drain in sorted key order: HashMap iteration order is nondeterministic
    // and ties in edge weights would otherwise make the arborescence (and
    // every blind recovery built on it) vary run to run.
    let mut pairs: Vec<((usize, usize), (DirectedEdge, DirectedEdge))> =
        cheapest.into_iter().collect();
    pairs.sort_by_key(|(k, _)| *k);
    let mut new_edges = Vec::with_capacity(pairs.len());
    let mut origin: Vec<DirectedEdge> = Vec::with_capacity(pairs.len());
    for (_, (contracted, original)) in pairs {
        new_edges.push(contracted);
        origin.push(original);
    }
    let sub_parents = solve(new_n, new_edges.clone(), new_root)?;
    // 5. Expand: for each contracted node, find which original edge was used.
    let mut parents = vec![usize::MAX; n];
    // Nodes inside a cycle default to their cycle predecessor.
    for v in 0..n {
        if cycle_id[v] != usize::MAX {
            parents[v] = best_in[v]?.from;
        }
    }
    for (ne, oe) in new_edges.iter().zip(&origin) {
        // The edge is used in the sub-solution iff it is the parent edge of
        // its target super-node (match on weight+endpoints; first match wins).
        if sub_parents[ne.to] == ne.from && parents_unset_or_cycle_entry(&parents, oe.to, &cycle_id)
        {
            // Only adopt one entry edge per super-node target.
            if cycle_id[oe.to] != usize::MAX {
                // Entering a cycle: oe.to's parent switches to the external
                // edge, breaking the cycle there.
                if !entry_done(&parents, &cycle_id, cycle_id[oe.to], &best_in, oe) {
                    parents[oe.to] = oe.from;
                }
            } else if parents[oe.to] == usize::MAX {
                parents[oe.to] = oe.from;
            }
        }
    }
    parents[root] = root;
    // Any remaining unset (shouldn't happen) -> fail loudly.
    if parents.iter().enumerate().any(|(v, &p)| v != root && p == usize::MAX) {
        return None;
    }
    Some(parents)
}

fn parents_unset_or_cycle_entry(parents: &[usize], to: usize, cycle_id: &[usize]) -> bool {
    parents[to] == usize::MAX || cycle_id[to] != usize::MAX
}

/// Checks whether the cycle `cid` already had its entry edge replaced (i.e.
/// some member's parent differs from its best-in cycle predecessor).
fn entry_done(
    parents: &[usize],
    cycle_id: &[usize],
    cid: usize,
    best_in: &[Option<DirectedEdge>],
    _candidate: &DirectedEdge,
) -> bool {
    for (v, &c) in cycle_id.iter().enumerate() {
        if c == cid {
            if let Some(b) = best_in[v] {
                if parents[v] != b.from {
                    return true;
                }
            }
        }
    }
    false
}

/// Total weight of a parent assignment under the given edges (picks the
/// cheapest matching edge per (parent, child); `None` if some edge missing).
pub fn arborescence_weight(parents: &[usize], edges: &[DirectedEdge], root: usize) -> Option<f32> {
    let mut total = 0.0f32;
    for (v, &p) in parents.iter().enumerate() {
        if v == root {
            continue;
        }
        let w = edges
            .iter()
            .filter(|e| e.from == p && e.to == v)
            .map(|e| e.weight)
            .fold(f32::INFINITY, f32::min);
        if w == f32::INFINITY {
            return None;
        }
        total += w;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(from: usize, to: usize, weight: f32) -> DirectedEdge {
        DirectedEdge { from, to, weight }
    }

    #[test]
    fn simple_chain() {
        let edges = vec![e(0, 1, 1.0), e(1, 2, 1.0), e(0, 2, 5.0)];
        let parents = minimum_arborescence(3, &edges, 0).unwrap();
        assert_eq!(parents, vec![0, 0, 1]);
    }

    #[test]
    fn prefers_cheaper_parent() {
        let edges = vec![e(0, 1, 1.0), e(0, 2, 1.0), e(1, 2, 0.1)];
        let parents = minimum_arborescence(3, &edges, 0).unwrap();
        assert_eq!(parents[2], 1);
    }

    #[test]
    fn breaks_cycles() {
        // 1 and 2 mutually prefer each other; root edges are expensive but
        // one must be taken.
        let edges = vec![
            e(0, 1, 10.0),
            e(0, 2, 12.0),
            e(1, 2, 1.0),
            e(2, 1, 1.0),
        ];
        let parents = minimum_arborescence(3, &edges, 0).unwrap();
        let w = arborescence_weight(&parents, &edges, 0).unwrap();
        // Optimal: 0→1 (10) + 1→2 (1) = 11.
        assert_eq!(parents, vec![0, 0, 1]);
        assert!((w - 11.0).abs() < 1e-5);
    }

    #[test]
    fn nested_cycle_case() {
        // Classic case requiring contraction: a 3-cycle with external entry.
        let edges = vec![
            e(0, 1, 5.0),
            e(1, 2, 1.0),
            e(2, 3, 1.0),
            e(3, 1, 1.0),
            e(0, 2, 3.0),
            e(0, 3, 8.0),
        ];
        let parents = minimum_arborescence(4, &edges, 0).unwrap();
        let w = arborescence_weight(&parents, &edges, 0).unwrap();
        // Best: enter the cycle at 2 (0→2 = 3), then 2→3 (1), 3→1 (1) = 5.
        assert!((w - 5.0).abs() < 1e-5, "weight {w}, parents {parents:?}");
        assert_eq!(parents[2], 0);
    }

    #[test]
    fn unreachable_returns_none() {
        let edges = vec![e(0, 1, 1.0)];
        assert!(minimum_arborescence(3, &edges, 0).is_none());
        assert!(minimum_arborescence(0, &[], 0).is_none());
        assert!(minimum_arborescence(2, &edges, 5).is_none());
    }

    #[test]
    fn single_node() {
        let parents = minimum_arborescence(1, &[], 0).unwrap();
        assert_eq!(parents, vec![0]);
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let edges = vec![e(0, 1, 9.0), e(0, 1, 2.0)];
        let parents = minimum_arborescence(2, &edges, 0).unwrap();
        assert_eq!(parents, vec![0, 0]);
        assert!((arborescence_weight(&parents, &edges, 0).unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn larger_random_graph_is_valid_tree() {
        use mlake_tensor::Pcg64;
        let mut rng = Pcg64::new(3);
        let n = 12;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.push(e(a, b, rng.next_f32() * 10.0));
                }
            }
        }
        let parents = minimum_arborescence(n, &edges, 0).unwrap();
        // Valid arborescence: every node reaches the root.
        for start in 0..n {
            let mut v = start;
            let mut hops = 0;
            while v != 0 {
                v = parents[v];
                hops += 1;
                assert!(hops <= n, "cycle detected from {start}");
            }
        }
    }
}
