//! # mlake-versioning
//!
//! Version-graph recovery: "given a model M_t and a set of N models,
//! construct a directed Model Graph T, where a directed edge between models
//! indicates that one model is a version of the other. The edges can
//! describe the transformation." (§3 Model Versioning)
//!
//! The pipeline (cf. Horwitz et al. "On the Origin of Llamas", Mu et al.
//! "Model DNA"):
//! 1. [`delta`] — forensic analysis of weight deltas between architecture-
//!    compatible models: which layers changed, delta rank, sparsity and
//!    quantisation signatures → a predicted [`TransformKind`] per edge;
//! 2. [`arborescence`] — Chu-Liu/Edmonds minimum spanning arborescence, the
//!    combinatorial core for blind (root-unknown) recovery;
//! 3. [`recover`] — the end-to-end recovery algorithms (known-roots greedy
//!    forest and blind Edmonds), stitch second-parent detection, and
//!    distilled-child attachment by behaviour;
//! 4. [`graph`] — recovered-graph representation and evaluation against the
//!    benchmark lake's ground truth (edge precision/recall/F1, direction
//!    accuracy, transform-kind accuracy).

pub mod arborescence;
pub mod delta;
pub mod graph;
pub mod recover;

pub use delta::{classify_transform, DeltaFeatures};
pub use graph::{GraphEval, RecoveredEdge, RecoveredGraph};
pub use recover::{recover_graph, RecoveryOptions};

pub use mlake_nn::TransformKind;
