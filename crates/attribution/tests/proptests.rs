//! Property-based tests for attribution: gradient consistency, influence
//! linearity in damping, and MIA score sanity.

use mlake_attribution::eval::topk_overlap;
use mlake_attribution::influence::influence_scores;
use mlake_attribution::membership::{advantage, auc, MembershipScore};
use mlake_attribution::softmax::{SoftmaxConfig, SoftmaxRegression};
use mlake_nn::LabeledData;
use mlake_tensor::{vector, Matrix, Pcg64};
use proptest::prelude::*;

fn arb_data() -> impl Strategy<Value = LabeledData> {
    (8usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = Pcg64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.2 } else { 1.2 };
            rows.push(vec![center + rng.normal() * 0.6, rng.normal() * 0.6]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The mean per-example gradient plus the L2 term equals the training
    /// objective gradient (the identity `mean_gradient` promises).
    #[test]
    fn mean_gradient_is_mean_of_example_gradients(data in arb_data()) {
        let cfg = SoftmaxConfig { l2: 0.05, steps: 60, lr: 0.5 };
        let model = SoftmaxRegression::train(&data, &cfg).unwrap();
        let mut acc = vec![0.0f32; model.num_params()];
        for (row, &y) in data.x.rows_iter().zip(&data.y) {
            let g = model.example_gradient(row, y).unwrap();
            vector::axpy(1.0, &g, &mut acc);
        }
        vector::scale(&mut acc, 1.0 / data.len() as f32);
        vector::axpy(model.l2(), model.params(), &mut acc);
        let mg = model.mean_gradient(&data).unwrap();
        for (a, b) in acc.iter().zip(&mg) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// At convergence the objective gradient is near zero.
    #[test]
    fn training_reaches_stationarity(data in arb_data()) {
        let cfg = SoftmaxConfig { l2: 0.1, steps: 600, lr: 0.5 };
        let model = SoftmaxRegression::train(&data, &cfg).unwrap();
        let g = model.mean_gradient(&data).unwrap();
        prop_assert!(vector::l2_norm(&g) < 1e-2, "grad norm {}", vector::l2_norm(&g));
    }

    /// More damping never increases the influence-score norm.
    #[test]
    fn damping_is_contractive(data in arb_data()) {
        let cfg = SoftmaxConfig { l2: 0.05, steps: 150, lr: 0.5 };
        let model = SoftmaxRegression::train(&data, &cfg).unwrap();
        let test_x = [0.8f32, -0.3];
        let lo = influence_scores(&model, &data, &test_x, 1, 0.01).unwrap();
        let hi = influence_scores(&model, &data, &test_x, 1, 5.0).unwrap();
        prop_assert!(vector::l2_norm(&hi) <= vector::l2_norm(&lo) + 1e-5);
    }

    /// AUC respects score monotonicity: applying a strictly increasing map
    /// to all scores leaves AUC unchanged.
    #[test]
    fn auc_invariant_under_monotone_transform(scores in proptest::collection::vec((any::<bool>(), -5.0f32..5.0), 2..30)) {
        let base: Vec<MembershipScore> = scores
            .iter()
            .map(|&(m, s)| MembershipScore { score: s, is_member: m })
            .collect();
        let mapped: Vec<MembershipScore> = scores
            .iter()
            .map(|&(m, s)| MembershipScore { score: s.exp().min(1e20), is_member: m })
            .collect();
        prop_assert!((auc(&base) - auc(&mapped)).abs() < 1e-4);
        prop_assert!((0.0..=1.0).contains(&auc(&base)));
        prop_assert!((0.0..=1.0).contains(&advantage(&base)));
    }

    /// Top-k overlap is symmetric and 1.0 on identical inputs.
    #[test]
    fn topk_overlap_properties(xs in proptest::collection::vec(-10.0f32..10.0, 3..20), k in 1usize..8) {
        prop_assert_eq!(topk_overlap(&xs, &xs, k), 1.0);
        let ys: Vec<f32> = xs.iter().map(|x| -x).collect();
        let ab = topk_overlap(&xs, &ys, k);
        let ba = topk_overlap(&ys, &xs, k);
        prop_assert!((ab - ba).abs() < 1e-6);
    }
}
