//! Extrinsic sensitivity analysis: "which aspects of the inputs to `f_θ` or
//! `p_θ` are most important in a model's prediction of a particular output?"
//! (§3). Works with nothing but black-box (occlusion) or gradient access —
//! the attribution route when history `D` is unavailable.

use mlake_nn::{grad, Loss, Mlp};
use mlake_tensor::TensorError;

/// Gradient × input saliency for one prediction: positive entries push the
/// loss up, so large |value| marks decision-critical features.
pub fn gradient_saliency(
    model: &Mlp,
    input: &[f32],
    target: usize,
) -> mlake_tensor::Result<Vec<f32>> {
    let g = grad::input_gradient(model, input, target, Loss::CrossEntropy)?;
    Ok(g.iter().zip(input).map(|(gi, xi)| gi * xi).collect())
}

/// Occlusion saliency: loss increase when each feature is replaced by
/// `baseline`. Fully black-box — usable on models whose intrinsics are
/// inaccessible.
pub fn occlusion_saliency(
    model: &Mlp,
    input: &[f32],
    target: usize,
    baseline: f32,
) -> mlake_tensor::Result<Vec<f32>> {
    let base_loss = Loss::CrossEntropy.value(&model.forward(input)?, target);
    let mut out = Vec::with_capacity(input.len());
    let mut work = input.to_vec();
    for i in 0..input.len() {
        let saved = work[i];
        work[i] = baseline;
        let loss = Loss::CrossEntropy.value(&model.forward(&work)?, target);
        out.push(loss - base_loss);
        work[i] = saved;
    }
    Ok(out)
}

/// Ranks feature indices by descending |saliency|.
pub fn top_features(saliency: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..saliency.len()).collect();
    idx.sort_by(|&a, &b| saliency[b].abs().total_cmp(&saliency[a].abs()));
    idx.truncate(k);
    idx
}

/// Representation probing: trains a tiny linear readout on hidden
/// activations to check whether a concept (binary labels) is linearly
/// decodable at `layer` — the intrinsic attribution primitive ("which
/// internal representations are most important for a decision?", §3).
pub fn probe_layer(
    model: &Mlp,
    inputs: &mlake_tensor::Matrix,
    concept: &[usize],
    layer: usize,
    seed: u64,
) -> mlake_tensor::Result<f32> {
    if inputs.rows() != concept.len() || inputs.rows() < 4 {
        return Err(TensorError::Empty("probe inputs"));
    }
    let mut reps = Vec::with_capacity(inputs.rows());
    for row in inputs.rows_iter() {
        reps.push(model.hidden_representation(row, layer)?);
    }
    let x = mlake_tensor::Matrix::from_rows(&reps)?;
    let data = mlake_nn::LabeledData::new(x, concept.to_vec())?;
    let mut rng = mlake_tensor::Seed::new(seed).derive("probe-init").rng();
    let mut probe = Mlp::new(
        vec![data.dim(), data.num_classes().max(2)],
        mlake_nn::Activation::Identity,
        mlake_tensor::init::Init::XavierNormal,
        &mut rng,
    )?;
    mlake_nn::train_mlp(
        &mut probe,
        &data,
        &mlake_nn::TrainConfig {
            epochs: 40,
            seed,
            ..Default::default()
        },
    )?;
    mlake_nn::train::accuracy(&probe, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{train_mlp, Activation, LabeledData, TrainConfig};
    use mlake_tensor::{init::Init, Matrix, Seed};

    /// Model where only feature 0 matters.
    fn feature0_model() -> (Mlp, LabeledData) {
        let mut rng = Seed::new(61).derive("init").rng();
        let mut m = Mlp::new(vec![4, 8, 2], Activation::Tanh, Init::XavierNormal, &mut rng).unwrap();
        let mut drng = Seed::new(62).derive("data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let c = i % 2;
            let x0 = if c == 0 { -1.5 } else { 1.5 };
            rows.push(vec![
                x0 + drng.normal() * 0.3,
                drng.normal(),
                drng.normal(),
                drng.normal(),
            ]);
            labels.push(c);
        }
        let data = LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        train_mlp(&mut m, &data, &TrainConfig { epochs: 25, ..Default::default() }).unwrap();
        (m, data)
    }

    #[test]
    fn gradient_saliency_finds_the_signal_feature() {
        let (m, _) = feature0_model();
        let s = gradient_saliency(&m, &[1.5, 0.2, -0.1, 0.3], 1).unwrap();
        assert_eq!(top_features(&s, 1), vec![0]);
    }

    #[test]
    fn occlusion_agrees_with_gradients_on_top_feature() {
        let (m, _) = feature0_model();
        let input = [1.5f32, 0.2, -0.1, 0.3];
        let occ = occlusion_saliency(&m, &input, 1, 0.0).unwrap();
        assert_eq!(top_features(&occ, 1), vec![0]);
        // Occluding the signal feature must raise the loss.
        assert!(occ[0] > 0.0);
    }

    #[test]
    fn probe_decodes_concept_from_hidden_layer() {
        let (m, data) = feature0_model();
        // The class itself should be decodable from the hidden layer of a
        // trained classifier.
        let acc = probe_layer(&m, &data.x, &data.y, 0, 7).unwrap();
        assert!(acc > 0.9, "probe accuracy {acc}");
    }

    #[test]
    fn probe_validates_inputs() {
        let (m, data) = feature0_model();
        assert!(probe_layer(&m, &data.x, &data.y[..3], 0, 7).is_err());
    }

    #[test]
    fn top_features_handles_short_input() {
        assert_eq!(top_features(&[0.1, -0.9], 5), vec![1, 0]);
        assert!(top_features(&[], 3).is_empty());
    }
}
