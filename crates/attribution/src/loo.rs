//! Exact leave-one-out retraining — the attribution ground truth.
//!
//! `loo_scores[i]` is the exact change in the test example's loss when
//! training example `i` is removed and the model retrained to convergence:
//! positive means removing `i` *hurts* the test prediction (i.e. `i` was
//! helpful/influential for it). Every approximate estimator in this crate is
//! scored by its agreement with these numbers.

use crate::softmax::{SoftmaxConfig, SoftmaxRegression};
use mlake_nn::LabeledData;

/// Exact LOO influence of every training example on `(test_x, test_y)`.
pub fn loo_scores(
    data: &LabeledData,
    test_x: &[f32],
    test_y: usize,
    config: &SoftmaxConfig,
) -> mlake_tensor::Result<Vec<f32>> {
    let full = SoftmaxRegression::train(data, config)?;
    let base_loss = full.example_loss(test_x, test_y)?;
    let mut scores = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let without = data.without(i)?;
        let retrained = SoftmaxRegression::train(&without, config)?;
        scores.push(retrained.example_loss(test_x, test_y)? - base_loss);
    }
    Ok(scores)
}

/// Exact LOO change in *mean test-set loss* (used when attribution targets a
/// benchmark rather than a single decision).
pub fn loo_scores_on_set(
    data: &LabeledData,
    test: &LabeledData,
    config: &SoftmaxConfig,
) -> mlake_tensor::Result<Vec<f32>> {
    let full = SoftmaxRegression::train(data, config)?;
    let base = full.mean_loss(test)?;
    let mut scores = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let without = data.without(i)?;
        let retrained = SoftmaxRegression::train(&without, config)?;
        scores.push(retrained.mean_loss(test)? - base);
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::{Matrix, Seed};

    fn blobs(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("loo-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.5 } else { 1.5 };
            rows.push(vec![center + rng.normal() * 0.5, rng.normal() * 0.5]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn same_class_neighbors_are_helpful() {
        let data = blobs(24, 1);
        let cfg = SoftmaxConfig { steps: 250, ..Default::default() };
        // Test point deep inside class 1.
        let scores = loo_scores(&data, &[1.5, 0.0], 1, &cfg).unwrap();
        assert_eq!(scores.len(), 24);
        // Removing the average class-1 example should hurt (positive score)
        // more than removing the average class-0 example.
        let mean_c1: f32 = data.y.iter().zip(&scores).filter(|(y, _)| **y == 1).map(|(_, s)| s).sum::<f32>()
            / 12.0;
        let mean_c0: f32 = data.y.iter().zip(&scores).filter(|(y, _)| **y == 0).map(|(_, s)| s).sum::<f32>()
            / 12.0;
        assert!(mean_c1 > mean_c0, "class-1 mean {mean_c1} !> class-0 mean {mean_c0}");
        assert!(mean_c1 > 0.0);
    }

    #[test]
    fn mislabeled_point_is_harmful() {
        let mut data = blobs(24, 2);
        // Poison: flip one label; removing it should *help* (negative score).
        data.y[0] = 1 - data.y[0];
        let cfg = SoftmaxConfig { steps: 250, ..Default::default() };
        let test_class = data.y[0]; // test point of the poisoned label's class
        let test_x = if test_class == 1 { [1.5, 0.0] } else { [-1.5, 0.0] };
        let scores = loo_scores(&data, &test_x, test_class, &cfg).unwrap();
        // The poisoned example sits at the wrong side; its removal decreases
        // the loss of a clean same-label test point... it actually *supports*
        // the flipped label. So instead check it is the most influential in
        // magnitude among its (flipped) class — a robust property.
        let mag0 = scores[0].abs();
        let median_mag = {
            let mut mags: Vec<f32> = scores.iter().map(|s| s.abs()).collect();
            mags.sort_by(f32::total_cmp);
            mags[mags.len() / 2]
        };
        assert!(mag0 > median_mag, "poison magnitude {mag0} vs median {median_mag}");
    }

    #[test]
    fn set_variant_matches_single_point_when_singleton() {
        let data = blobs(16, 3);
        let cfg = SoftmaxConfig { steps: 200, ..Default::default() };
        let test = LabeledData::new(
            Matrix::from_rows(&[vec![1.5, 0.0]]).unwrap(),
            vec![1],
        )
        .unwrap();
        let a = loo_scores(&data, &[1.5, 0.0], 1, &cfg).unwrap();
        let b = loo_scores_on_set(&data, &test, &cfg).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
