//! # mlake-attribution
//!
//! Training-data attribution and membership inference — the paper's **model
//! attribution** task (§3): "which training data items d ∈ D are most
//! influential on the decision; which d, if they were not present in the
//! training data, would cause the decision to change the most?"
//!
//! Estimators, ordered by cost and fidelity:
//! * [`loo`] — exact leave-one-out retraining: the ground truth (computable
//!   here because the benchmark lake's models are small and convex — the
//!   evaluation the LLM-scale literature can only approximate);
//! * [`influence`] — influence functions (Koh & Liang 2017) with a damped
//!   Hessian solved by conjugate gradients;
//! * [`tracin`] — TracIn-style gradient tracing over training checkpoints
//!   (Pruthi et al. 2020);
//! * [`saliency`] — extrinsic input-sensitivity analysis (gradients and
//!   occlusion), the attribution fallback when history is unavailable;
//! * [`membership`] — membership-inference attacks (Shokri et al. 2017):
//!   loss-threshold and shadow-model variants, answering "was d in D?";
//! * [`reconstruction`] — training-data extraction probes (Carlini et al.):
//!   greedy-decoding overlap with a reference corpus as memorisation
//!   evidence.
//!
//! The convex carrier for exact experiments is [`softmax::SoftmaxRegression`].

pub mod eval;
pub mod influence;
pub mod loo;
pub mod membership;
pub mod reconstruction;
pub mod saliency;
pub mod softmax;
pub mod tracin;

pub use influence::influence_scores;
pub use loo::loo_scores;
pub use softmax::SoftmaxRegression;
pub use tracin::tracin_scores;
