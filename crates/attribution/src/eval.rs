//! Agreement metrics between attribution estimators and ground truth.

/// Jaccard-free top-`k` overlap: `|topk(a) ∩ topk(b)| / k` where top-k is by
/// descending score (the "most influential" sets the paper's attribution
/// question asks for).
pub fn topk_overlap(a: &[f32], b: &[f32], k: usize) -> f32 {
    if a.len() != b.len() || a.is_empty() || k == 0 {
        return 0.0;
    }
    let top = |xs: &[f32]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[j].total_cmp(&xs[i]));
        idx.truncate(k.min(xs.len()));
        idx
    };
    let ta = top(a);
    let tb = top(b);
    let inter = ta.iter().filter(|i| tb.contains(i)).count();
    inter as f32 / k.min(a.len()) as f32
}

/// Summary of an estimator's agreement with ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agreement {
    /// Pearson correlation (`None` when degenerate).
    pub pearson: Option<f32>,
    /// Spearman rank correlation.
    pub spearman: Option<f32>,
    /// Top-10 overlap fraction.
    pub top10: f32,
}

/// Computes all agreement metrics at once.
pub fn agreement(truth: &[f32], estimate: &[f32]) -> Agreement {
    Agreement {
        pearson: mlake_tensor::stats::pearson(truth, estimate),
        spearman: mlake_tensor::stats::spearman(truth, estimate),
        top10: topk_overlap(truth, estimate, 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_scores_agree_perfectly() {
        let xs: Vec<f32> = (0..20).map(|i| (i as f32).sin()).collect();
        let a = agreement(&xs, &xs);
        assert!((a.pearson.unwrap() - 1.0).abs() < 1e-5);
        assert!((a.spearman.unwrap() - 1.0).abs() < 1e-5);
        assert!((a.top10 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn topk_overlap_edge_cases() {
        assert_eq!(topk_overlap(&[], &[], 5), 0.0);
        assert_eq!(topk_overlap(&[1.0], &[1.0, 2.0], 1), 0.0);
        assert_eq!(topk_overlap(&[1.0, 2.0], &[1.0, 2.0], 0), 0.0);
        // k longer than vector: normalise by the shorter effective k.
        assert_eq!(topk_overlap(&[1.0, 2.0], &[2.0, 1.0], 10), 1.0);
    }

    #[test]
    fn disjoint_tops_score_zero() {
        let a = [10.0, 9.0, 0.0, 0.0];
        let b = [0.0, 0.0, 9.0, 10.0];
        assert_eq!(topk_overlap(&a, &b, 2), 0.0);
    }
}
