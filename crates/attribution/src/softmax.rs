//! L2-regularised softmax regression — the convex model class on which
//! influence estimates can be validated against *exact* leave-one-out
//! ground truth.
//!
//! The bias is folded in as a constant-1 feature, so the parameters are a
//! single `classes × (dim + 1)` matrix, the loss is strictly convex (for
//! `l2 > 0`), and full-batch gradient descent converges to the unique
//! optimum — making retraining deterministic and comparable.

use mlake_nn::LabeledData;
use mlake_tensor::{vector, Matrix, TensorError};
use serde::{Deserialize, Serialize};

/// Softmax (multinomial logistic) regression with L2 regularisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    classes: usize,
    dim: usize,
    /// `classes × (dim + 1)` weights; last column is the bias.
    w: Matrix,
    /// L2 strength used at training time (also the Hessian's ridge).
    l2: f32,
}

/// Training options for [`SoftmaxRegression::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftmaxConfig {
    /// L2 regularisation strength (must be > 0 for a PD Hessian).
    pub l2: f32,
    /// Full-batch gradient steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for SoftmaxConfig {
    fn default() -> Self {
        SoftmaxConfig {
            l2: 0.01,
            steps: 400,
            lr: 0.5,
        }
    }
}

impl SoftmaxRegression {
    /// Trains to (near-)convergence with deterministic full-batch descent.
    pub fn train(data: &LabeledData, config: &SoftmaxConfig) -> mlake_tensor::Result<Self> {
        if data.is_empty() {
            return Err(TensorError::Empty("softmax training data"));
        }
        let dim = data.dim();
        let classes = data.num_classes().max(2);
        let mut model = SoftmaxRegression {
            classes,
            dim,
            w: Matrix::zeros(classes, dim + 1),
            l2: config.l2.max(1e-6),
        };
        for _ in 0..config.steps {
            let grad = model.mean_gradient(data)?;
            let mut params = model.w.as_slice().to_vec();
            vector::axpy(-config.lr, &grad, &mut params);
            model.w = Matrix::from_vec(classes, dim + 1, params)?;
        }
        Ok(model)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Feature dimensionality (excluding the folded bias).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.classes * (self.dim + 1)
    }

    /// Flat parameter view.
    pub fn params(&self) -> &[f32] {
        self.w.as_slice()
    }

    fn augmented(&self, x: &[f32]) -> Vec<f32> {
        let mut a = Vec::with_capacity(self.dim + 1);
        a.extend_from_slice(x);
        a.push(1.0);
        a
    }

    /// Class logits for an input.
    pub fn logits(&self, x: &[f32]) -> mlake_tensor::Result<Vec<f32>> {
        if x.len() != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "softmax_logits",
                lhs: (self.dim, 1),
                rhs: (x.len(), 1),
            });
        }
        self.w.matvec(&self.augmented(x))
    }

    /// Class probabilities.
    pub fn predict_probs(&self, x: &[f32]) -> mlake_tensor::Result<Vec<f32>> {
        Ok(vector::softmax(&self.logits(x)?))
    }

    /// Most likely class.
    pub fn predict_class(&self, x: &[f32]) -> mlake_tensor::Result<usize> {
        vector::argmax(&self.logits(x)?).ok_or(TensorError::Empty("predict_class"))
    }

    /// Cross-entropy loss of one example (without the L2 term — attribution
    /// asks about data terms).
    pub fn example_loss(&self, x: &[f32], y: usize) -> mlake_tensor::Result<f32> {
        let logits = self.logits(x)?;
        if y >= logits.len() {
            return Err(TensorError::OutOfBounds {
                index: (y, 0),
                shape: (logits.len(), 1),
            });
        }
        Ok(vector::log_sum_exp(&logits) - logits[y])
    }

    /// Flat gradient of one example's loss w.r.t. the parameters
    /// (`classes × (dim+1)` layout, row-major; no L2 term).
    pub fn example_gradient(&self, x: &[f32], y: usize) -> mlake_tensor::Result<Vec<f32>> {
        let p = self.predict_probs(x)?;
        let a = self.augmented(x);
        let mut g = vec![0.0f32; self.num_params()];
        for c in 0..self.classes {
            let coeff = p[c] - if c == y { 1.0 } else { 0.0 };
            let row = &mut g[c * (self.dim + 1)..(c + 1) * (self.dim + 1)];
            for (gi, &ai) in row.iter_mut().zip(&a) {
                *gi = coeff * ai;
            }
        }
        Ok(g)
    }

    /// Mean data gradient plus the L2 term — the training objective's
    /// gradient.
    pub fn mean_gradient(&self, data: &LabeledData) -> mlake_tensor::Result<Vec<f32>> {
        let mut g = vec![0.0f32; self.num_params()];
        for (row, &y) in data.x.rows_iter().zip(&data.y) {
            let gi = self.example_gradient(row, y)?;
            vector::axpy(1.0, &gi, &mut g);
        }
        let n = data.len() as f32;
        vector::scale(&mut g, 1.0 / n);
        vector::axpy(self.l2, self.params(), &mut g);
        Ok(g)
    }

    /// Mean loss over a dataset (data term only).
    pub fn mean_loss(&self, data: &LabeledData) -> mlake_tensor::Result<f32> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut acc = 0.0f64;
        for (row, &y) in data.x.rows_iter().zip(&data.y) {
            acc += f64::from(self.example_loss(row, y)?);
        }
        Ok((acc / data.len() as f64) as f32)
    }

    /// Classification accuracy.
    pub fn accuracy(&self, data: &LabeledData) -> mlake_tensor::Result<f32> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for (row, &y) in data.x.rows_iter().zip(&data.y) {
            if self.predict_class(row)? == y {
                correct += 1;
            }
        }
        Ok(correct as f32 / data.len() as f32)
    }

    /// Explicit Hessian of the training objective
    /// `H = (1/n) Σ_i (diag(p_i) − p_i p_iᵀ) ⊗ a_i a_iᵀ + l2·I`,
    /// a `num_params × num_params` matrix. Positive definite for `l2 > 0`.
    pub fn hessian(&self, data: &LabeledData) -> mlake_tensor::Result<Matrix> {
        let np = self.num_params();
        let da = self.dim + 1;
        let mut h = Matrix::zeros(np, np);
        for (row, _) in data.x.rows_iter().zip(&data.y) {
            let p = self.predict_probs(row)?;
            let a = self.augmented(row);
            for c1 in 0..self.classes {
                for c2 in 0..self.classes {
                    let s = p[c1] * (if c1 == c2 { 1.0 } else { 0.0 } - p[c2]);
                    if s == 0.0 {
                        continue;
                    }
                    for j in 0..da {
                        let base = (c1 * da + j) * np + c2 * da;
                        let aj = a[j] * s;
                        let hrow = &mut h.as_mut_slice()[base..base + da];
                        for (hv, &ak) in hrow.iter_mut().zip(&a) {
                            *hv += aj * ak;
                        }
                    }
                }
            }
        }
        let n = data.len() as f32;
        h.scale_mut(1.0 / n);
        for i in 0..np {
            let v = h.at(i, i) + self.l2;
            h.set_at(i, i, v);
        }
        Ok(h)
    }

    /// L2 regularisation strength.
    pub fn l2(&self) -> f32 {
        self.l2
    }

    /// Returns a copy with replaced flat parameters (same shape contract as
    /// [`Self::params`]). Used by checkpointed training.
    pub fn with_params(&self, params: Vec<f32>) -> mlake_tensor::Result<Self> {
        Ok(SoftmaxRegression {
            classes: self.classes,
            dim: self.dim,
            w: Matrix::from_vec(self.classes, self.dim + 1, params)?,
            l2: self.l2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::Seed;

    pub(crate) fn blobs(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("sm-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 3;
            let mut x = vec![0.0f32; 4];
            x[c] = 2.0;
            for v in &mut x {
                *v += rng.normal() * 0.4;
            }
            rows.push(x);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn training_learns() {
        let data = blobs(120, 1);
        let m = SoftmaxRegression::train(&data, &SoftmaxConfig::default()).unwrap();
        assert!(m.accuracy(&data).unwrap() > 0.95);
        assert!(m.mean_loss(&data).unwrap() < 0.3);
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs(60, 2);
        let a = SoftmaxRegression::train(&data, &SoftmaxConfig::default()).unwrap();
        let b = SoftmaxRegression::train(&data, &SoftmaxConfig::default()).unwrap();
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = blobs(30, 3);
        let m = SoftmaxRegression::train(&data, &SoftmaxConfig { steps: 50, ..Default::default() })
            .unwrap();
        let x = data.x.row(0);
        let y = data.y[0];
        let g = m.example_gradient(x, y).unwrap();
        let eps = 1e-2f32;
        for i in (0..m.num_params()).step_by(4) {
            let mut mp = m.clone();
            let mut params = m.w.as_slice().to_vec();
            params[i] += eps;
            mp.w = Matrix::from_vec(m.classes, m.dim + 1, params.clone()).unwrap();
            let lp = mp.example_loss(x, y).unwrap();
            params[i] -= 2.0 * eps;
            mp.w = Matrix::from_vec(m.classes, m.dim + 1, params).unwrap();
            let lm = mp.example_loss(x, y).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g[i]).abs() < 5e-2, "param {i}: fd {fd} vs {}", g[i]);
        }
    }

    #[test]
    fn hessian_matches_finite_difference_of_gradient() {
        let data = blobs(20, 4);
        let m = SoftmaxRegression::train(&data, &SoftmaxConfig { steps: 30, ..Default::default() })
            .unwrap();
        let h = m.hessian(&data).unwrap();
        let np = m.num_params();
        assert_eq!(h.shape(), (np, np));
        let eps = 1e-2f32;
        for i in (0..np).step_by(7) {
            let mut params = m.w.as_slice().to_vec();
            params[i] += eps;
            let mut mp = m.clone();
            mp.w = Matrix::from_vec(m.classes, m.dim + 1, params.clone()).unwrap();
            let gp = mp.mean_gradient(&data).unwrap();
            params[i] -= 2.0 * eps;
            mp.w = Matrix::from_vec(m.classes, m.dim + 1, params).unwrap();
            let gm = mp.mean_gradient(&data).unwrap();
            for j in (0..np).step_by(5) {
                let fd = (gp[j] - gm[j]) / (2.0 * eps);
                assert!(
                    (fd - h.at(j, i)).abs() < 5e-2,
                    "H[{j},{i}] fd {fd} vs {}",
                    h.at(j, i)
                );
            }
        }
    }

    #[test]
    fn hessian_is_symmetric_and_ridge_dominated() {
        let data = blobs(25, 5);
        let m = SoftmaxRegression::train(&data, &SoftmaxConfig { l2: 0.1, ..Default::default() })
            .unwrap();
        let h = m.hessian(&data).unwrap();
        for i in 0..m.num_params() {
            assert!(h.at(i, i) >= 0.1 - 1e-5);
            for j in 0..m.num_params() {
                assert!((h.at(i, j) - h.at(j, i)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn validation() {
        let empty = LabeledData::new(Matrix::zeros(0, 4), vec![]).unwrap();
        assert!(SoftmaxRegression::train(&empty, &SoftmaxConfig::default()).is_err());
        let data = blobs(10, 6);
        let m = SoftmaxRegression::train(&data, &SoftmaxConfig { steps: 5, ..Default::default() })
            .unwrap();
        assert!(m.logits(&[1.0]).is_err());
        assert!(m.example_loss(&[0.0; 4], 99).is_err());
    }
}
