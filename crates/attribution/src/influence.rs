//! Influence functions (Koh & Liang 2017).
//!
//! The first-order approximation of leave-one-out:
//! `ΔL(test) ≈ (1/n) · ∇L(test)ᵀ H⁻¹ ∇L(z_i)`, with the training objective's
//! Hessian `H` (damped for conditioning) solved once per test point by
//! conjugate gradients. On the convex carrier this should track exact LOO
//! closely; experiment E3 quantifies how closely.

use crate::softmax::SoftmaxRegression;
use mlake_nn::LabeledData;
use mlake_tensor::{linalg, vector};

/// Influence of every training example on `(test_x, test_y)`, in the same
/// units and sign convention as [`crate::loo::loo_scores`] (approximate
/// change in test loss if the example were removed).
pub fn influence_scores(
    model: &SoftmaxRegression,
    data: &LabeledData,
    test_x: &[f32],
    test_y: usize,
    damping: f32,
) -> mlake_tensor::Result<Vec<f32>> {
    let h = model.hessian(data)?;
    let g_test = model.example_gradient(test_x, test_y)?;
    // s = H⁻¹ ∇L(test), damped.
    let s = linalg::conjugate_gradient(&h, &g_test, damping.max(0.0), 500, 1e-6)?;
    let n = data.len() as f32;
    let mut out = Vec::with_capacity(data.len());
    for (row, &y) in data.x.rows_iter().zip(&data.y) {
        let g_i = model.example_gradient(row, y)?;
        out.push(vector::dot(&s, &g_i) / n);
    }
    Ok(out)
}

/// Influence with an exact dense Hessian solve instead of CG — the numeric
/// upper bound CG is validated against (small models only).
pub fn influence_scores_exact(
    model: &SoftmaxRegression,
    data: &LabeledData,
    test_x: &[f32],
    test_y: usize,
) -> mlake_tensor::Result<Vec<f32>> {
    let h = model.hessian(data)?;
    let g_test = model.example_gradient(test_x, test_y)?;
    let s = linalg::solve_dense(&h, &g_test)?;
    let n = data.len() as f32;
    let mut out = Vec::with_capacity(data.len());
    for (row, &y) in data.x.rows_iter().zip(&data.y) {
        let g_i = model.example_gradient(row, y)?;
        out.push(vector::dot(&s, &g_i) / n);
    }
    Ok(out)
}

/// Gradient-similarity baseline: influence ≈ `∇L(test)·∇L(z_i) / n`
/// (influence functions with `H = I`). Cheap, and the gap to the full
/// estimator measures what the curvature correction buys.
pub fn gradient_dot_scores(
    model: &SoftmaxRegression,
    data: &LabeledData,
    test_x: &[f32],
    test_y: usize,
) -> mlake_tensor::Result<Vec<f32>> {
    let g_test = model.example_gradient(test_x, test_y)?;
    let n = data.len() as f32;
    let mut out = Vec::with_capacity(data.len());
    for (row, &y) in data.x.rows_iter().zip(&data.y) {
        let g_i = model.example_gradient(row, y)?;
        out.push(vector::dot(&g_test, &g_i) / n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loo::loo_scores;
    use crate::softmax::SoftmaxConfig;
    use mlake_tensor::{stats, Matrix, Seed};

    fn blobs(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("inf-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.5 } else { 1.5 };
            rows.push(vec![center + rng.normal() * 0.5, rng.normal() * 0.5]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn influence_correlates_with_exact_loo() {
        let data = blobs(24, 1);
        let cfg = SoftmaxConfig { l2: 0.05, steps: 400, lr: 0.5 };
        let model = SoftmaxRegression::train(&data, &cfg).unwrap();
        let test_x = [1.5f32, 0.0];
        let loo = loo_scores(&data, &test_x, 1, &cfg).unwrap();
        let inf = influence_scores(&model, &data, &test_x, 1, 0.0).unwrap();
        let r = stats::pearson(&loo, &inf).expect("non-constant scores");
        assert!(r > 0.8, "pearson {r}");
        let rho = stats::spearman(&loo, &inf).unwrap();
        assert!(rho > 0.7, "spearman {rho}");
    }

    #[test]
    fn cg_matches_exact_solve() {
        let data = blobs(20, 2);
        let cfg = SoftmaxConfig { l2: 0.05, steps: 300, lr: 0.5 };
        let model = SoftmaxRegression::train(&data, &cfg).unwrap();
        let a = influence_scores(&model, &data, &[1.0, 0.5], 1, 0.0).unwrap();
        let b = influence_scores_exact(&model, &data, &[1.0, 0.5], 1).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn curvature_correction_beats_plain_gradients() {
        let data = blobs(24, 3);
        let cfg = SoftmaxConfig { l2: 0.05, steps: 400, lr: 0.5 };
        let model = SoftmaxRegression::train(&data, &cfg).unwrap();
        let test_x = [1.2f32, 0.3];
        let loo = loo_scores(&data, &test_x, 1, &cfg).unwrap();
        let inf = influence_scores(&model, &data, &test_x, 1, 0.0).unwrap();
        let gd = gradient_dot_scores(&model, &data, &test_x, 1).unwrap();
        let r_inf = stats::pearson(&loo, &inf).unwrap();
        let r_gd = stats::pearson(&loo, &gd).unwrap();
        assert!(
            r_inf >= r_gd - 0.05,
            "influence ({r_inf}) should not trail gradient-dot ({r_gd})"
        );
    }

    #[test]
    fn damping_shrinks_scores() {
        let data = blobs(20, 4);
        let cfg = SoftmaxConfig::default();
        let model = SoftmaxRegression::train(&data, &cfg).unwrap();
        let a = influence_scores(&model, &data, &[1.0, 0.0], 1, 0.0).unwrap();
        let b = influence_scores(&model, &data, &[1.0, 0.0], 1, 10.0).unwrap();
        let na = mlake_tensor::vector::l2_norm(&a);
        let nb = mlake_tensor::vector::l2_norm(&b);
        assert!(nb < na, "damped norm {nb} !< undamped {na}");
    }
}
