//! Membership inference (Shokri et al. 2017; Shi et al. 2024): "is a
//! specific training data item `d` present in the training data `D`?" — the
//! paper's history-free attribution fallback (§4 Attribution).

use crate::softmax::{SoftmaxConfig, SoftmaxRegression};
use mlake_nn::LabeledData;
use mlake_tensor::{Pcg64, Seed, TensorError};

/// A scored membership decision for one example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipScore {
    /// Attack score: larger = more likely a member.
    pub score: f32,
    /// Ground-truth membership (known in benchmark evaluation).
    pub is_member: bool,
}

/// Loss-threshold attack scores: members tend to have lower loss, so the
/// attack score is the negated example loss.
pub fn loss_attack_scores(
    model: &SoftmaxRegression,
    members: &LabeledData,
    non_members: &LabeledData,
) -> mlake_tensor::Result<Vec<MembershipScore>> {
    let mut out = Vec::with_capacity(members.len() + non_members.len());
    for (row, &y) in members.x.rows_iter().zip(&members.y) {
        out.push(MembershipScore {
            score: -model.example_loss(row, y)?,
            is_member: true,
        });
    }
    for (row, &y) in non_members.x.rows_iter().zip(&non_members.y) {
        out.push(MembershipScore {
            score: -model.example_loss(row, y)?,
            is_member: false,
        });
    }
    Ok(out)
}

/// Area under the ROC curve of attack scores (1.0 = perfect attack, 0.5 =
/// chance — i.e. the model leaks nothing).
pub fn auc(scores: &[MembershipScore]) -> f32 {
    let pos: Vec<f32> = scores.iter().filter(|s| s.is_member).map(|s| s.score).collect();
    let neg: Vec<f32> = scores.iter().filter(|s| !s.is_member).map(|s| s.score).collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    // Mann–Whitney U statistic.
    let mut wins = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    (wins / (pos.len() as f64 * neg.len() as f64)) as f32
}

/// Membership advantage `max_τ (TPR(τ) − FPR(τ))` — the standard scalar
/// summary of attack power.
pub fn advantage(scores: &[MembershipScore]) -> f32 {
    let mut sorted: Vec<&MembershipScore> = scores.iter().collect();
    sorted.sort_by(|a, b| b.score.total_cmp(&a.score));
    let p = scores.iter().filter(|s| s.is_member).count() as f32;
    let n = scores.len() as f32 - p;
    if p == 0.0 || n == 0.0 {
        return 0.0;
    }
    let (mut tp, mut fp, mut best) = (0.0f32, 0.0f32, 0.0f32);
    for s in sorted {
        if s.is_member {
            tp += 1.0;
        } else {
            fp += 1.0;
        }
        best = best.max(tp / p - fp / n);
    }
    best
}

/// Shadow-model attack: trains `num_shadows` models on random halves of an
/// auxiliary population, learns the member/non-member loss threshold from
/// them, then scores the *target* model's candidates against that threshold.
///
/// Returns `(threshold, target_scores)`; decide `score >= -threshold` …
/// i.e. a candidate is predicted member when its loss is below the learned
/// threshold.
pub fn shadow_attack(
    aux: &LabeledData,
    target: &SoftmaxRegression,
    candidates_member: &LabeledData,
    candidates_non_member: &LabeledData,
    num_shadows: usize,
    config: &SoftmaxConfig,
    seed: Seed,
) -> mlake_tensor::Result<(f32, Vec<MembershipScore>)> {
    if num_shadows == 0 || aux.len() < 8 {
        return Err(TensorError::Empty("shadow attack inputs"));
    }
    let mut rng: Pcg64 = seed.derive("shadow").rng();
    let mut shadow_scores: Vec<MembershipScore> = Vec::new();
    for _ in 0..num_shadows {
        let (half_in, half_out) = aux.split(0.5, &mut rng)?;
        let shadow = SoftmaxRegression::train(&half_in, config)?;
        shadow_scores.extend(loss_attack_scores(&shadow, &half_in, &half_out)?);
    }
    // Learn the threshold maximising balanced accuracy on shadow scores.
    let mut candidates: Vec<f32> = shadow_scores.iter().map(|s| s.score).collect();
    candidates.sort_by(f32::total_cmp);
    candidates.dedup();
    let pos = shadow_scores.iter().filter(|s| s.is_member).count() as f32;
    let neg = shadow_scores.len() as f32 - pos;
    let mut best = (f32::NEG_INFINITY, 0.0f32);
    for &tau in &candidates {
        let tp = shadow_scores
            .iter()
            .filter(|s| s.is_member && s.score >= tau)
            .count() as f32;
        let tn = shadow_scores
            .iter()
            .filter(|s| !s.is_member && s.score < tau)
            .count() as f32;
        let bal = 0.5 * (tp / pos.max(1.0) + tn / neg.max(1.0));
        if bal > best.1 {
            best = (tau, bal);
        }
    }
    let threshold = best.0;
    let target_scores = loss_attack_scores(target, candidates_member, candidates_non_member)?;
    Ok((threshold, target_scores))
}

/// Accuracy of threshold decisions on scored candidates.
pub fn threshold_accuracy(scores: &[MembershipScore], threshold: f32) -> f32 {
    if scores.is_empty() {
        return 0.0;
    }
    let correct = scores
        .iter()
        .filter(|s| (s.score >= threshold) == s.is_member)
        .count();
    correct as f32 / scores.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::Matrix;

    /// Weak-signal, high-dimensional blobs: dimension 0 carries a faint class
    /// signal, the other 9 dimensions are pure noise a low-regularisation
    /// linear model will happily memorise — the overfitting regime MIAs need.
    fn blobs(n: usize, seed: u64, noise: f32) -> LabeledData {
        let mut rng = Seed::new(seed).derive("mia-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -0.5 } else { 0.5 };
            let mut x = vec![0.0f32; 10];
            x[0] = center + rng.normal() * noise;
            for v in x.iter_mut().skip(1) {
                *v = rng.normal() * noise;
            }
            rows.push(x);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn overfit_model_leaks_membership() {
        // Small noisy training set + long training = overfitting = leakage.
        let members = blobs(16, 1, 1.2);
        let non_members = blobs(16, 2, 1.2);
        let cfg = SoftmaxConfig { l2: 1e-6, steps: 2000, lr: 1.0 };
        let model = SoftmaxRegression::train(&members, &cfg).unwrap();
        let scores = loss_attack_scores(&model, &members, &non_members).unwrap();
        let a = auc(&scores);
        assert!(a > 0.6, "AUC {a}");
        assert!(advantage(&scores) > 0.15);
    }

    #[test]
    fn well_regularised_model_leaks_less() {
        let members = blobs(64, 3, 1.2);
        let non_members = blobs(64, 4, 1.2);
        let overfit_cfg = SoftmaxConfig { l2: 1e-6, steps: 2000, lr: 1.0 };
        let reg_cfg = SoftmaxConfig { l2: 0.5, steps: 400, lr: 0.5 };
        let overfit = SoftmaxRegression::train(&blobs(16, 3, 1.2), &overfit_cfg).unwrap();
        let regular = SoftmaxRegression::train(&members, &reg_cfg).unwrap();
        let auc_overfit = auc(&loss_attack_scores(&overfit, &blobs(16, 3, 1.2), &non_members).unwrap());
        let auc_regular = auc(&loss_attack_scores(&regular, &members, &non_members).unwrap());
        assert!(
            auc_regular < auc_overfit + 0.05,
            "regularised AUC {auc_regular} vs overfit {auc_overfit}"
        );
    }

    #[test]
    fn auc_edge_cases() {
        assert_eq!(auc(&[]), 0.5);
        let only_pos = [MembershipScore { score: 1.0, is_member: true }];
        assert_eq!(auc(&only_pos), 0.5);
        // Perfectly separated.
        let sep = [
            MembershipScore { score: 1.0, is_member: true },
            MembershipScore { score: 0.0, is_member: false },
        ];
        assert_eq!(auc(&sep), 1.0);
        assert_eq!(advantage(&sep), 1.0);
        assert_eq!(advantage(&only_pos), 0.0);
    }

    #[test]
    fn shadow_attack_beats_chance_on_overfit_target() {
        let aux = blobs(64, 5, 1.2);
        let target_train = blobs(16, 6, 1.2);
        let target_out = blobs(16, 7, 1.2);
        let cfg = SoftmaxConfig { l2: 1e-6, steps: 1500, lr: 1.0 };
        let target = SoftmaxRegression::train(&target_train, &cfg).unwrap();
        let (tau, scores) =
            shadow_attack(&aux, &target, &target_train, &target_out, 4, &cfg, Seed::new(8))
                .unwrap();
        let acc = threshold_accuracy(&scores, tau);
        assert!(acc > 0.55, "attack accuracy {acc}");
    }

    #[test]
    fn shadow_attack_validation() {
        let aux = blobs(4, 9, 1.0);
        let cfg = SoftmaxConfig::default();
        let model = SoftmaxRegression::train(&aux, &cfg).unwrap();
        assert!(shadow_attack(&aux, &model, &aux, &aux, 0, &cfg, Seed::new(1)).is_err());
        assert!(shadow_attack(&aux, &model, &aux, &aux, 2, &cfg, Seed::new(1)).is_err());
        assert_eq!(threshold_accuracy(&[], 0.0), 0.0);
    }
}
