//! TracIn-style attribution (Pruthi et al. 2020): trace the influence of a
//! training example through training checkpoints as
//! `Σ_t η · ∇L(test; θ_t) · ∇L(z_i; θ_t)`.
//!
//! Unlike influence functions this needs no Hessian — only checkpoints kept
//! during training — which is why lake registries that store checkpoints
//! enable cheaper attribution (a concrete payoff of recording history §2).

use crate::softmax::{SoftmaxConfig, SoftmaxRegression};
use mlake_nn::LabeledData;
use mlake_tensor::{vector, TensorError};

/// Checkpointed training of the convex carrier: returns the final model and
/// `num_checkpoints` evenly spaced parameter snapshots.
pub fn train_with_checkpoints(
    data: &LabeledData,
    config: &SoftmaxConfig,
    num_checkpoints: usize,
) -> mlake_tensor::Result<(SoftmaxRegression, Vec<SoftmaxRegression>)> {
    if num_checkpoints == 0 {
        return Err(TensorError::Empty("tracin checkpoints"));
    }
    let every = (config.steps / num_checkpoints).max(1);
    let mut model = SoftmaxRegression::train(
        data,
        &SoftmaxConfig {
            steps: 0,
            ..*config
        },
    )?;
    let mut checkpoints = Vec::with_capacity(num_checkpoints);
    for step in 0..config.steps {
        let grad = model.mean_gradient(data)?;
        let mut params = model.params().to_vec();
        vector::axpy(-config.lr, &grad, &mut params);
        model = model.with_params(params)?;
        if (step + 1) % every == 0 && checkpoints.len() < num_checkpoints {
            checkpoints.push(model.clone());
        }
    }
    if checkpoints.is_empty() {
        checkpoints.push(model.clone());
    }
    Ok((model, checkpoints))
}

/// TracIn scores for `(test_x, test_y)` over the checkpoints.
pub fn tracin_scores(
    checkpoints: &[SoftmaxRegression],
    lr: f32,
    data: &LabeledData,
    test_x: &[f32],
    test_y: usize,
) -> mlake_tensor::Result<Vec<f32>> {
    if checkpoints.is_empty() {
        return Err(TensorError::Empty("tracin checkpoints"));
    }
    let mut scores = vec![0.0f32; data.len()];
    for ckpt in checkpoints {
        let g_test = ckpt.example_gradient(test_x, test_y)?;
        for (i, (row, &y)) in data.x.rows_iter().zip(&data.y).enumerate() {
            let g_i = ckpt.example_gradient(row, y)?;
            scores[i] += lr * vector::dot(&g_test, &g_i);
        }
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loo::loo_scores;
    use mlake_tensor::{stats, Matrix, Seed};

    fn blobs(n: usize, seed: u64) -> LabeledData {
        let mut rng = Seed::new(seed).derive("tracin-blobs").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.5 } else { 1.5 };
            rows.push(vec![center + rng.normal() * 0.5, rng.normal() * 0.5]);
            labels.push(c);
        }
        LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn checkpointed_training_matches_plain_training() {
        let data = blobs(30, 1);
        let cfg = SoftmaxConfig { steps: 100, ..Default::default() };
        let plain = SoftmaxRegression::train(&data, &cfg).unwrap();
        let (ckpt_final, checkpoints) = train_with_checkpoints(&data, &cfg, 5).unwrap();
        assert_eq!(checkpoints.len(), 5);
        for (a, b) in plain.params().iter().zip(ckpt_final.params()) {
            assert!((a - b).abs() < 1e-5);
        }
        // Final checkpoint equals the final model.
        for (a, b) in checkpoints[4].params().iter().zip(ckpt_final.params()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn tracin_correlates_with_loo() {
        let data = blobs(24, 2);
        let cfg = SoftmaxConfig { steps: 300, ..Default::default() };
        let (_, checkpoints) = train_with_checkpoints(&data, &cfg, 6).unwrap();
        let test_x = [1.5f32, 0.0];
        let tr = tracin_scores(&checkpoints, cfg.lr, &data, &test_x, 1).unwrap();
        let loo = loo_scores(&data, &test_x, 1, &cfg).unwrap();
        let r = stats::pearson(&loo, &tr).expect("non-constant");
        assert!(r > 0.5, "pearson {r}");
    }

    #[test]
    fn validation() {
        let data = blobs(8, 3);
        let cfg = SoftmaxConfig { steps: 10, ..Default::default() };
        assert!(train_with_checkpoints(&data, &cfg, 0).is_err());
        assert!(tracin_scores(&[], 0.1, &data, &[0.0, 0.0], 0).is_err());
    }
}
