//! Training-data reconstruction (extraction) probe — Carlini et al.'s
//! "extracting training data" attack family, instantiated for the lake's
//! generative models.
//!
//! A language model that memorised its corpus will regenerate long verbatim
//! spans of it under greedy (most-likely) decoding. The probe greedily
//! decodes continuations from every context and measures the longest
//! verbatim overlap with a reference corpus; high overlap on the *training*
//! corpus but not on held-out text is memorisation evidence — attribution of
//! the model's content back to `D` without any recorded history (§4).

use mlake_nn::NgramLm;
use mlake_tensor::vector;

/// Greedy (argmax) decoding of `len` tokens after `prompt`.
pub fn greedy_decode(lm: &NgramLm, prompt: &[usize], len: usize) -> mlake_tensor::Result<Vec<usize>> {
    let mut seq = prompt.to_vec();
    for _ in 0..len {
        let dist = lm.next_dist(&seq)?;
        let next = vector::argmax(&dist)
            .ok_or(mlake_tensor::TensorError::Empty("greedy_decode"))?;
        seq.push(next);
    }
    Ok(seq.split_off(prompt.len()))
}

/// Length of the longest run of `needle` (from its start) found verbatim
/// anywhere in `haystack`.
fn longest_prefix_match(needle: &[usize], haystack: &[usize]) -> usize {
    let mut best = 0usize;
    for start in 0..haystack.len() {
        let mut k = 0;
        while k < needle.len() && start + k < haystack.len() && haystack[start + k] == needle[k] {
            k += 1;
        }
        best = best.max(k);
        if best == needle.len() {
            break;
        }
    }
    best
}

/// Result of an extraction probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionReport {
    /// Mean verbatim-continuation length over all probed contexts.
    pub mean_verbatim_len: f32,
    /// Longest single verbatim continuation found.
    pub max_verbatim_len: usize,
    /// Number of contexts probed.
    pub contexts: usize,
}

/// Probes `lm` for memorisation of `corpus`: from every distinct starting
/// token, greedily decode `span` tokens and measure verbatim overlap with
/// the corpus. Compare the report on the training corpus against one on
/// held-out text: a gap is memorisation.
pub fn extraction_probe(
    lm: &NgramLm,
    corpus: &[usize],
    span: usize,
) -> mlake_tensor::Result<ExtractionReport> {
    let mut total = 0usize;
    let mut max_len = 0usize;
    let mut contexts = 0usize;
    for start_tok in 0..lm.vocab() {
        let decoded = greedy_decode(lm, &[start_tok], span)?;
        let matched = longest_prefix_match(&decoded, corpus);
        total += matched;
        max_len = max_len.max(matched);
        contexts += 1;
    }
    Ok(ExtractionReport {
        mean_verbatim_len: total as f32 / contexts.max(1) as f32,
        max_verbatim_len: max_len,
        contexts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::Pcg64;

    /// A highly structured corpus the bigram model will memorise.
    fn cyclic_corpus(n: usize) -> Vec<usize> {
        (0..n).map(|i| i % 6).collect()
    }

    fn random_corpus(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = Pcg64::new(seed);
        (0..n).map(|_| rng.index(6)).collect()
    }

    #[test]
    fn greedy_decode_follows_learned_cycle() {
        let mut lm = NgramLm::new(6, 2, 0.05).unwrap();
        lm.add_counts(&cyclic_corpus(120), 1.0).unwrap();
        let out = greedy_decode(&lm, &[2], 6).unwrap();
        assert_eq!(out, vec![3, 4, 5, 0, 1, 2]);
    }

    #[test]
    fn memorised_corpus_extracts_long_spans() {
        let corpus = cyclic_corpus(200);
        let mut lm = NgramLm::new(6, 2, 0.05).unwrap();
        lm.add_counts(&corpus, 1.0).unwrap();
        let on_train = extraction_probe(&lm, &corpus, 12).unwrap();
        assert_eq!(on_train.contexts, 6);
        // Every greedy continuation reproduces the cycle verbatim.
        assert!(on_train.mean_verbatim_len > 10.0, "{on_train:?}");
        // Against unrelated held-out text the overlap collapses.
        let held_out = random_corpus(200, 9);
        let off_train = extraction_probe(&lm, &held_out, 12).unwrap();
        assert!(
            on_train.mean_verbatim_len > off_train.mean_verbatim_len,
            "{on_train:?} vs {off_train:?}"
        );
    }

    #[test]
    fn unmemorised_model_extracts_little() {
        // A model trained on high-entropy text has little to regurgitate:
        // the extraction gap between its training text and fresh random text
        // is small compared to the memorised case.
        let corpus = random_corpus(400, 1);
        let mut lm = NgramLm::new(6, 2, 0.5).unwrap();
        lm.add_counts(&corpus, 1.0).unwrap();
        let on_train = extraction_probe(&lm, &corpus, 12).unwrap();
        let off_train = extraction_probe(&lm, &random_corpus(400, 2), 12).unwrap();
        let gap = on_train.mean_verbatim_len - off_train.mean_verbatim_len;
        assert!(gap.abs() < 6.0, "unexpectedly large memorisation gap {gap}");
    }

    #[test]
    fn prefix_match_edges() {
        assert_eq!(longest_prefix_match(&[], &[1, 2, 3]), 0);
        assert_eq!(longest_prefix_match(&[1, 2], &[]), 0);
        assert_eq!(longest_prefix_match(&[2, 3], &[1, 2, 3, 4]), 2);
        assert_eq!(longest_prefix_match(&[9], &[1, 2]), 0);
    }
}
