//! # mlake-fingerprint
//!
//! Model fingerprints: fixed-dimension embeddings of models computed from
//! the paper's three viewpoints (§2):
//!
//! * **intrinsic** ([`intrinsic`]) — from `(f*, θ)`: weight-distribution
//!   moments, feature-hashed weight sketches ("Model DNA", cf. Mu et al.),
//!   and spectral summaries;
//! * **extrinsic** ([`extrinsic`]) — from `p_θ`: responses to a fixed probe
//!   set (classifier output distributions, LM next-token distributions);
//! * **representation-level** ([`cka`]) — centered kernel alignment between
//!   hidden representations, for fine-grained similarity analysis.
//!
//! The embeddings feed the lake's indexer (§5: "create embeddings
//! representing the important features of the model and design a fast
//! nearest neighbor search over these embeddings") and the weight-space
//! property classifier ([`weightspace`], §5 Weight-Space Modeling).

pub mod cka;
pub mod distance;
pub mod extrinsic;
pub mod intrinsic;
pub mod spectral;
pub mod weightspace;

pub use distance::FingerprintKind;
pub use extrinsic::ProbeSet;
pub use intrinsic::{model_dna, moment_features, sketch_params, structural_features};
pub use spectral::spectral_features;

use mlake_nn::Model;
use mlake_tensor::Matrix;

/// Everything needed to fingerprint any model in the lake consistently:
/// shared probe sets and a shared sketch configuration. Build once per lake.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    /// Sketch dimensionality for hashed weight features.
    pub sketch_dim: usize,
    /// Seed namespace for the sketch hash.
    pub seed: u64,
    /// Shared probe inputs for classifiers.
    pub probes: ProbeSet,
}

impl Fingerprinter {
    /// Builds a fingerprinter with the given sketch width and probe set.
    pub fn new(sketch_dim: usize, seed: u64, probes: ProbeSet) -> Fingerprinter {
        Fingerprinter { sketch_dim, seed, probes }
    }

    /// Intrinsic fingerprint: 8 moment features + hashed weight sketch.
    pub fn intrinsic(&self, model: &Model) -> Vec<f32> {
        let _span = mlake_obs::span("fingerprint.intrinsic");
        model_dna(model, self.sketch_dim, self.seed)
    }

    /// Extrinsic fingerprint: hashed behavioural responses on the shared
    /// probe set, `sketch_dim` wide.
    pub fn extrinsic(&self, model: &Model) -> mlake_tensor::Result<Vec<f32>> {
        let _span = mlake_obs::span("fingerprint.extrinsic");
        self.probes.behavior_sketch(model, self.sketch_dim, self.seed)
    }

    /// Hybrid fingerprint: L2-normalised intrinsic ++ extrinsic halves, the
    /// combination §5 recommends ("many of the model lake tasks will benefit
    /// from [a] hybrid approach").
    pub fn hybrid(&self, model: &Model) -> mlake_tensor::Result<Vec<f32>> {
        let mut a = self.intrinsic(model);
        let mut b = self.extrinsic(model)?;
        mlake_tensor::vector::normalize(&mut a);
        mlake_tensor::vector::normalize(&mut b);
        a.extend_from_slice(&b);
        Ok(a)
    }

    /// Fingerprint under a named kind (for sweeps/ablations).
    pub fn compute(&self, kind: FingerprintKind, model: &Model) -> mlake_tensor::Result<Vec<f32>> {
        match kind {
            FingerprintKind::Intrinsic => Ok(self.intrinsic(model)),
            FingerprintKind::Extrinsic => self.extrinsic(model),
            FingerprintKind::Hybrid => self.hybrid(model),
        }
    }

    /// Fingerprints a whole slice of models in parallel on the shared pool,
    /// one [`Fingerprinter::compute`] per model, results in model order.
    ///
    /// Models are fingerprinted independently, so each result is identical
    /// to the corresponding single-model call regardless of thread count.
    /// The first error (in model order) is returned if any model fails.
    pub fn compute_many<M: std::borrow::Borrow<Model> + Sync>(
        &self,
        kind: FingerprintKind,
        models: &[M],
    ) -> mlake_tensor::Result<Vec<Vec<f32>>> {
        let _span = mlake_obs::span("fingerprint.batch");
        mlake_par::par_map(models, |m| self.compute(kind, m.borrow()))
            .into_iter()
            .collect()
    }

    /// Representation matrix of an MLP over the probe inputs (probes ×
    /// hidden units at layer `layer`), the CKA input.
    pub fn representation(&self, model: &Model, layer: usize) -> mlake_tensor::Result<Matrix> {
        self.probes.representation(model, layer)
    }
}
