//! Extrinsic fingerprints from observable behaviour `p_θ`.
//!
//! Every model in the lake is probed with the *same* fixed probe set, so
//! behavioural responses are directly comparable — the "model as query"
//! search of Lu et al. (SIGGRAPH Asia 2023) generalised to classifiers and
//! LMs. Classifier probes are feature vectors; LM probes are token contexts.

use crate::intrinsic::sketch_params;
use mlake_nn::Model;
use mlake_tensor::{Matrix, Seed, TensorError};

/// A shared probe set covering both model families in the lake.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    /// Feature-vector probes for classifiers (rows).
    pub tabular: Matrix,
    /// Token-context probes for language models.
    pub contexts: Vec<Vec<usize>>,
}

impl ProbeSet {
    /// Builds the standard probe set: `n_tabular` Gaussian feature probes of
    /// dimension `dim` scaled by `scale`, and `n_contexts` token contexts of
    /// length `context_len` over vocabulary `vocab`.
    pub fn standard(
        dim: usize,
        n_tabular: usize,
        scale: f32,
        vocab: usize,
        n_contexts: usize,
        context_len: usize,
        seed: Seed,
    ) -> ProbeSet {
        let mut rng = seed.derive("probe-tabular").rng();
        let tabular = Matrix::from_fn(n_tabular, dim, |_, _| rng.normal() * scale);
        let mut crng = seed.derive("probe-contexts").rng();
        let contexts = (0..n_contexts)
            .map(|_| (0..context_len).map(|_| crng.index(vocab)).collect())
            .collect();
        ProbeSet { tabular, contexts }
    }

    /// Raw behavioural response vector: concatenated output distributions
    /// over the applicable probes. Dimensionality depends on the model
    /// family (probes × classes, or contexts × vocab).
    pub fn behavior(&self, model: &Model) -> mlake_tensor::Result<Vec<f32>> {
        match model {
            Model::Mlp(_) => {
                if self.tabular.rows() == 0 {
                    return Err(TensorError::Empty("tabular probes"));
                }
                let mut out = Vec::new();
                for row in self.tabular.rows_iter() {
                    out.extend(model.predict_probs(row)?);
                }
                Ok(out)
            }
            Model::Lm(lm) => {
                if self.contexts.is_empty() {
                    return Err(TensorError::Empty("context probes"));
                }
                let mut out = Vec::new();
                for ctx in &self.contexts {
                    // Clamp probe tokens into this model's vocabulary so one
                    // probe set serves heterogeneous LMs.
                    let clamped: Vec<usize> =
                        ctx.iter().map(|&t| t.min(lm.vocab() - 1)).collect();
                    out.extend(lm.next_dist(&clamped)?);
                }
                Ok(out)
            }
        }
    }

    /// Behaviour hashed to a fixed `dim` (family-namespaced so classifier and
    /// LM responses never alias) — the indexable extrinsic fingerprint.
    pub fn behavior_sketch(
        &self,
        model: &Model,
        dim: usize,
        seed: u64,
    ) -> mlake_tensor::Result<Vec<f32>> {
        let behavior = self.behavior(model)?;
        let family_ns = match model {
            Model::Mlp(_) => seed ^ 0x11,
            Model::Lm(_) => seed ^ 0x22,
        };
        Ok(sketch_params(&behavior, dim, family_ns))
    }

    /// Hidden-representation matrix of an MLP over the tabular probes
    /// (`probes × hidden_units` at layer `layer`). CKA's input.
    pub fn representation(&self, model: &Model, layer: usize) -> mlake_tensor::Result<Matrix> {
        let mlp = model
            .as_mlp()
            .ok_or(TensorError::Empty("representation of non-MLP"))?;
        let mut rows = Vec::with_capacity(self.tabular.rows());
        for probe in self.tabular.rows_iter() {
            rows.push(mlp.hidden_representation(probe, layer)?);
        }
        Matrix::from_rows(&rows)
    }

    /// Mean total-variation distance between two models' behaviour on the
    /// applicable probes. Errors if the models are of different families.
    pub fn behavioral_distance(&self, a: &Model, b: &Model) -> mlake_tensor::Result<f32> {
        let (ba, bb) = (self.behavior(a)?, self.behavior(b)?);
        if ba.len() != bb.len() {
            return Err(TensorError::ShapeMismatch {
                op: "behavioral_distance",
                lhs: (ba.len(), 1),
                rhs: (bb.len(), 1),
            });
        }
        let probes = match a {
            Model::Mlp(_) => self.tabular.rows(),
            Model::Lm(_) => self.contexts.len(),
        };
        let tv: f32 = ba.iter().zip(&bb).map(|(x, y)| (x - y).abs()).sum::<f32>() / 2.0;
        Ok(tv / probes.max(1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::transform::finetune::finetune_mlp;
    use mlake_nn::{train_mlp, Activation, LabeledData, Mlp, NgramLm, TrainConfig};
    use mlake_tensor::init::Init;

    fn probes() -> ProbeSet {
        ProbeSet::standard(4, 16, 2.0, 8, 12, 2, Seed::new(5))
    }

    fn trained_mlp(seed: u64) -> Model {
        let mut rng = Seed::new(seed).derive("init").rng();
        let mut m = Mlp::new(vec![4, 8, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap();
        let mut drng = Seed::new(seed).derive("data").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let c = i % 3;
            let mut x = vec![0.0f32; 4];
            x[c] = 2.0;
            for v in &mut x {
                *v += drng.normal() * 0.3;
            }
            rows.push(x);
            labels.push(c);
        }
        let data = LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        train_mlp(&mut m, &data, &TrainConfig { epochs: 10, ..Default::default() }).unwrap();
        Model::Mlp(m)
    }

    #[test]
    fn behavior_dims() {
        let ps = probes();
        let m = trained_mlp(1);
        let b = ps.behavior(&m).unwrap();
        assert_eq!(b.len(), 16 * 3);
        let mut lm = NgramLm::new(8, 2, 0.1).unwrap();
        lm.add_counts(&[0, 1, 2, 3, 4, 5, 6, 7], 1.0).unwrap();
        let bl = ps.behavior(&Model::Lm(lm)).unwrap();
        assert_eq!(bl.len(), 12 * 8);
    }

    #[test]
    fn sketch_fixed_dim_across_families() {
        let ps = probes();
        let m = trained_mlp(1);
        let mut lm = NgramLm::new(8, 2, 0.1).unwrap();
        lm.add_counts(&[0, 1, 2, 3], 1.0).unwrap();
        let sm = ps.behavior_sketch(&m, 32, 7).unwrap();
        let sl = ps.behavior_sketch(&Model::Lm(lm), 32, 7).unwrap();
        assert_eq!(sm.len(), 32);
        assert_eq!(sl.len(), 32);
    }

    #[test]
    fn finetuned_child_is_behaviorally_closer_than_stranger() {
        let ps = probes();
        let parent = trained_mlp(1);
        let stranger = trained_mlp(999);
        // Lightly fine-tune the parent on a few examples.
        let mut drng = Seed::new(7).derive("ft").rng();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let c = i % 3;
            let mut x = vec![0.0f32; 4];
            x[c] = 2.0;
            for v in &mut x {
                *v += drng.normal() * 0.3;
            }
            rows.push(x);
            labels.push(c);
        }
        let ft_data = LabeledData::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        let (child, _) = finetune_mlp(
            parent.as_mlp().unwrap(),
            &ft_data,
            &TrainConfig { epochs: 2, ..Default::default() },
        )
        .unwrap();
        let child = Model::Mlp(child);
        let d_child = ps.behavioral_distance(&parent, &child).unwrap();
        let d_stranger = ps.behavioral_distance(&parent, &stranger).unwrap();
        assert!(d_child < d_stranger, "{d_child} !< {d_stranger}");
        assert_eq!(ps.behavioral_distance(&parent, &parent).unwrap(), 0.0);
    }

    #[test]
    fn distance_rejects_cross_family() {
        let ps = probes();
        let m = trained_mlp(1);
        let mut lm = NgramLm::new(8, 2, 0.1).unwrap();
        lm.add_counts(&[0, 1, 2], 1.0).unwrap();
        assert!(ps.behavioral_distance(&m, &Model::Lm(lm)).is_err());
    }

    #[test]
    fn representation_shape_and_gate() {
        let ps = probes();
        let m = trained_mlp(1);
        let rep = ps.representation(&m, 0).unwrap();
        assert_eq!(rep.shape(), (16, 8));
        let mut lm = NgramLm::new(8, 2, 0.1).unwrap();
        lm.add_counts(&[0, 1], 1.0).unwrap();
        assert!(ps.representation(&Model::Lm(lm), 0).is_err());
    }

    #[test]
    fn empty_probe_sets_error() {
        let ps = ProbeSet {
            tabular: Matrix::zeros(0, 4),
            contexts: Vec::new(),
        };
        assert!(ps.behavior(&trained_mlp(1)).is_err());
        let mut lm = NgramLm::new(8, 2, 0.1).unwrap();
        lm.add_counts(&[0], 1.0).unwrap();
        assert!(ps.behavior(&Model::Lm(lm)).is_err());
    }
}
