//! Spectral fingerprints: singular-value summaries of weight matrices.
//!
//! The singular spectrum of a layer is invariant to permutations of the
//! neighbouring layers' units (unlike raw weights) and captures the layer's
//! effective capacity. Spectra shift predictably under the derivation
//! operators — pruning and quantisation compress the tail, LoRA perturbs a
//! few directions — making spectral features a permutation-robust companion
//! to the hashed weight sketch.

use mlake_nn::Model;
use mlake_tensor::linalg;

/// Per-layer spectral summary: `[σ₁, σ₂/σ₁, stable-rank-ratio]` per layer,
/// padded/truncated to `max_layers` layers (LMs summarise the probability
/// table as a single layer). Output length: `3 * max_layers`.
pub fn spectral_features(model: &Model, max_layers: usize) -> mlake_tensor::Result<Vec<f32>> {
    let mut out = vec![0.0f32; 3 * max_layers];
    match model {
        Model::Mlp(m) => {
            for l in 0..m.num_layers().min(max_layers) {
                let w = m.weight(l);
                let svs = linalg::singular_values(w, 2)?;
                let s1 = svs.first().copied().unwrap_or(0.0);
                let s2 = svs.get(1).copied().unwrap_or(0.0);
                let fro = w.frobenius_norm();
                out[l * 3] = s1;
                out[l * 3 + 1] = if s1 > 0.0 { s2 / s1 } else { 0.0 };
                out[l * 3 + 2] = if s1 > 0.0 {
                    (fro * fro) / (s1 * s1) / w.rows().min(w.cols()).max(1) as f32
                } else {
                    0.0
                };
            }
        }
        Model::Lm(lm) => {
            // Treat the probability table as one wide layer.
            let vocab = lm.vocab();
            let table = mlake_tensor::Matrix::from_vec(
                lm.num_contexts(),
                vocab,
                lm.flat_params(),
            )?;
            // Power iteration (cheap) for σ₁ on potentially large tables.
            let mut rng = mlake_tensor::Pcg64::new(0x5bec);
            let s1 = linalg::top_singular_value(&table, 30, &mut rng)?;
            let fro = table.frobenius_norm();
            out[0] = s1;
            out[2] = if s1 > 0.0 {
                (fro * fro) / (s1 * s1) / table.rows().min(table.cols()).max(1) as f32
            } else {
                0.0
            };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::transform::prune::prune_mlp;
    use mlake_nn::{Activation, Mlp, NgramLm};
    use mlake_tensor::{init::Init, Pcg64};

    fn mlp(seed: u64) -> Model {
        let mut rng = Pcg64::new(seed);
        Model::Mlp(Mlp::new(vec![6, 12, 4], Activation::Relu, Init::HeNormal, &mut rng).unwrap())
    }

    #[test]
    fn fixed_length_output() {
        let f = spectral_features(&mlp(1), 4).unwrap();
        assert_eq!(f.len(), 12);
        // Two real layers populated, the rest zero padding.
        assert!(f[0] > 0.0 && f[3] > 0.0);
        assert_eq!(&f[6..], &[0.0; 6]);
    }

    #[test]
    fn permutation_invariance_of_spectrum() {
        // Permuting hidden units (rows of W0, columns of W1) leaves each
        // layer's singular values unchanged.
        let m = mlp(2);
        let base = m.as_mlp().unwrap();
        let perm: Vec<usize> = (0..12).rev().collect();
        let w0 = base.weight(0);
        let w1 = base.weight(1);
        let pw0 = mlake_tensor::Matrix::from_fn(12, 6, |r, c| w0.at(perm[r], c));
        let pw1 = mlake_tensor::Matrix::from_fn(4, 12, |r, c| w1.at(r, perm[c]));
        let permuted = Mlp::from_parts(
            base.layer_sizes().to_vec(),
            base.activation(),
            vec![pw0, pw1],
            vec![base.bias(0).to_vec(), base.bias(1).to_vec()],
        )
        .unwrap();
        let fa = spectral_features(&m, 2).unwrap();
        let fb = spectral_features(&Model::Mlp(permuted), 2).unwrap();
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a - b).abs() < 1e-3, "{fa:?} vs {fb:?}");
        }
    }

    #[test]
    fn pruning_shifts_the_spectrum() {
        let m = mlp(3);
        let pruned = Model::Mlp(prune_mlp(m.as_mlp().unwrap(), 0.7).unwrap());
        let fa = spectral_features(&m, 2).unwrap();
        let fb = spectral_features(&pruned, 2).unwrap();
        // Heavy pruning lowers stable rank (mass concentrates on fewer
        // directions).
        assert!(fb[2] < fa[2] + 1e-6, "stable-rank ratio {} vs {}", fb[2], fa[2]);
        assert_ne!(fa, fb);
    }

    #[test]
    fn lm_table_spectrum() {
        let mut lm = NgramLm::new(6, 2, 0.1).unwrap();
        lm.add_counts(&(0..120).map(|i| i % 6).collect::<Vec<_>>(), 1.0).unwrap();
        let f = spectral_features(&Model::Lm(lm), 2).unwrap();
        assert!(f[0] > 0.0);
        assert!(f[2] > 0.0);
        assert_eq!(&f[3..], &[0.0, 0.0, 0.0]);
    }
}
