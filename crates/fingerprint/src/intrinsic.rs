//! Intrinsic fingerprints from `(f*, θ)`.
//!
//! *Moment features* summarise the weight distribution (the raw material of
//! direction heuristics in version recovery); the *hashed sketch* is a
//! feature-hashing projection of the flat parameter vector into a fixed
//! dimension, deterministic in a seed — comparable across models of any size
//! and linear in `θ`, so weight-space proximity survives the projection (a
//! Johnson–Lindenstrauss-style guarantee with ±1 hashing). Their
//! concatenation is this repository's "Model DNA" (after Mu et al. 2023).

use mlake_nn::Model;
use mlake_tensor::stats::MomentSummary;

/// Splitmix-style avalanche hash for (seed, index) pairs.
#[inline]
fn hash_index(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Feature-hashing sketch of an arbitrary-length parameter vector into
/// `dim` buckets with ±1 signs. Deterministic in `seed`; L2-normalised.
pub fn sketch_params(params: &[f32], dim: usize, seed: u64) -> Vec<f32> {
    assert!(dim > 0, "sketch dimension must be positive");
    let mut out = vec![0.0f32; dim];
    for (i, &v) in params.iter().enumerate() {
        let h = hash_index(seed, i as u64);
        let bucket = (h % dim as u64) as usize;
        let sign = if h & (1 << 63) == 0 { 1.0 } else { -1.0 };
        out[bucket] += sign * v;
    }
    mlake_tensor::vector::normalize(&mut out);
    out
}

/// Eight global weight-distribution moments of a model.
pub fn moment_features(model: &Model) -> [f32; 8] {
    MomentSummary::of(&model.flat_params()).to_features()
}

/// Per-layer moment features for an MLP (empty for LMs, whose "layers" are
/// context rows and are summarised globally instead).
pub fn layer_moment_features(model: &Model) -> Vec<[f32; 8]> {
    match model {
        Model::Mlp(m) => (0..m.num_layers())
            .map(|l| MomentSummary::of(m.weight(l).as_slice()).to_features())
            .collect(),
        Model::Lm(_) => Vec::new(),
    }
}

/// The full intrinsic fingerprint: moments ++ hashed sketch,
/// `8 + sketch_dim` long.
pub fn model_dna(model: &Model, sketch_dim: usize, seed: u64) -> Vec<f32> {
    let params = model.flat_params();
    let mut out = Vec::with_capacity(8 + sketch_dim);
    out.extend_from_slice(&MomentSummary::of(&params).to_features());
    out.extend_from_slice(&sketch_params(&params, sketch_dim, seed));
    out
}

/// Structural weight statistics that survive without a parent reference:
/// `[sparsity, distinct-value ratio, log10(#params), #layers, max |w|,
/// bias-to-weight norm ratio]`. Sparsity exposes pruning, a collapsed
/// distinct-value ratio exposes quantisation — the per-model half of the
/// transform signatures `mlake-versioning` reads off deltas.
pub fn structural_features(model: &Model) -> [f32; 6] {
    let params = model.flat_params();
    let n = params.len().max(1);
    let sparsity = params.iter().filter(|&&w| w == 0.0).count() as f32 / n as f32;
    let distinct = {
        let mut v: Vec<u32> = params.iter().map(|w| w.to_bits()).collect();
        v.sort_unstable();
        v.dedup();
        v.len() as f32 / n as f32
    };
    let max_abs = params.iter().fold(0.0f32, |a, &w| a.max(w.abs()));
    let (layers, bias_ratio) = match model {
        Model::Mlp(m) => {
            let wnorm: f32 = (0..m.num_layers())
                .map(|l| m.weight(l).frobenius_norm().powi(2))
                .sum::<f32>()
                .sqrt();
            let bnorm: f32 = (0..m.num_layers())
                .map(|l| mlake_tensor::vector::l2_norm(m.bias(l)).powi(2))
                .sum::<f32>()
                .sqrt();
            (m.num_layers() as f32, bnorm / wnorm.max(1e-9))
        }
        Model::Lm(_) => (0.0, 0.0),
    };
    [
        sparsity,
        distinct,
        (n as f32).log10(),
        layers,
        max_abs,
        bias_ratio,
    ]
}

/// Relative weight-delta norm `‖θ_a − θ_b‖ / ‖θ_b‖` for architecture-
/// compatible models; `None` when parameter counts differ.
pub fn relative_delta_norm(a: &Model, b: &Model) -> Option<f32> {
    let pa = a.flat_params();
    let pb = b.flat_params();
    if pa.len() != pb.len() {
        return None;
    }
    let denom = mlake_tensor::vector::l2_norm(&pb);
    if denom == 0.0 {
        return None;
    }
    Some(mlake_tensor::vector::l2_distance(&pa, &pb) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_nn::{Activation, Mlp, NgramLm};
    use mlake_tensor::{init::Init, vector, Pcg64};

    fn mlp(seed: u64) -> Model {
        let mut rng = Pcg64::new(seed);
        Model::Mlp(Mlp::new(vec![4, 8, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap())
    }

    #[test]
    fn sketch_is_deterministic_and_normalised() {
        let p: Vec<f32> = (0..200).map(|i| (i as f32).sin()).collect();
        let a = sketch_params(&p, 32, 7);
        let b = sketch_params(&p, 32, 7);
        assert_eq!(a, b);
        assert!((vector::l2_norm(&a) - 1.0).abs() < 1e-5);
        let c = sketch_params(&p, 32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sketch_preserves_proximity() {
        let mut rng = Pcg64::new(1);
        let base: Vec<f32> = (0..500).map(|_| rng.normal()).collect();
        // Near neighbour: tiny perturbation. Far: independent vector.
        let near: Vec<f32> = base.iter().map(|&x| x + 0.01 * rng.normal()).collect();
        let far: Vec<f32> = (0..500).map(|_| rng.normal()).collect();
        let sb = sketch_params(&base, 64, 3);
        let sn = sketch_params(&near, 64, 3);
        let sf = sketch_params(&far, 64, 3);
        let sim_near = vector::cosine_similarity(&sb, &sn);
        let sim_far = vector::cosine_similarity(&sb, &sf);
        assert!(sim_near > 0.99, "near sim {sim_near}");
        assert!(sim_far < 0.5, "far sim {sim_far}");
    }

    #[test]
    fn dna_length_and_content() {
        let m = mlp(2);
        let dna = model_dna(&m, 32, 5);
        assert_eq!(dna.len(), 40);
        // First 8 entries are the moments.
        let moments = moment_features(&m);
        assert_eq!(&dna[..8], &moments);
    }

    #[test]
    fn dna_distinguishes_unrelated_but_matches_self() {
        let a = mlp(2);
        let b = mlp(99);
        let da = model_dna(&a, 64, 5);
        let db = model_dna(&b, 64, 5);
        assert_eq!(da, model_dna(&a, 64, 5));
        let sim = vector::cosine_similarity(&da[8..], &db[8..]);
        assert!(sim < 0.5, "unrelated models too similar: {sim}");
    }

    #[test]
    fn layer_moments_per_family() {
        let m = mlp(3);
        assert_eq!(layer_moment_features(&m).len(), 2);
        let lm = Model::Lm(NgramLm::new(8, 2, 0.1).unwrap());
        assert!(layer_moment_features(&lm).is_empty());
        // Global moments still work for LMs.
        let f = moment_features(&lm);
        assert!(f[0] > 0.0); // uniform probabilities have positive mean
    }

    #[test]
    fn structural_features_expose_prune_and_quantize() {
        use mlake_nn::transform::{prune::prune_mlp, quantize::quantize_mlp};
        let base = mlp(4);
        let pruned = Model::Mlp(prune_mlp(base.as_mlp().unwrap(), 0.5).unwrap());
        let quantized = Model::Mlp(quantize_mlp(base.as_mlp().unwrap(), 4).unwrap());
        let fb = structural_features(&base);
        let fp = structural_features(&pruned);
        let fq = structural_features(&quantized);
        assert!(fp[0] > fb[0] + 0.3, "sparsity {} vs {}", fp[0], fb[0]);
        assert!(fq[1] < fb[1] * 0.8, "distinct {} vs {}", fq[1], fb[1]);
        // Layer count and size stable under both.
        assert_eq!(fb[3], fp[3]);
        assert_eq!(fb[2], fq[2]);
    }

    #[test]
    fn relative_delta_norm_cases() {
        let a = mlp(2);
        let b = mlp(3);
        assert!(relative_delta_norm(&a, &a).unwrap() < 1e-6);
        assert!(relative_delta_norm(&a, &b).unwrap() > 0.1);
        let lm = Model::Lm(NgramLm::new(8, 2, 0.1).unwrap());
        assert_eq!(relative_delta_norm(&a, &lm), None);
    }
}
