//! Fingerprint kinds and distances — the ablation axis of the search and
//! versioning experiments (DESIGN.md §5, ablation 1).

use serde::{Deserialize, Serialize};

/// Which viewpoint a fingerprint is computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FingerprintKind {
    /// Weights only (`f*, θ`).
    Intrinsic,
    /// Behaviour only (`p_θ`).
    Extrinsic,
    /// Normalised concatenation of both.
    Hybrid,
}

impl FingerprintKind {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FingerprintKind::Intrinsic => "intrinsic",
            FingerprintKind::Extrinsic => "extrinsic",
            FingerprintKind::Hybrid => "hybrid",
        }
    }

    /// Parses [`name`](Self::name).
    pub fn parse(s: &str) -> Option<FingerprintKind> {
        match s {
            "intrinsic" => Some(FingerprintKind::Intrinsic),
            "extrinsic" => Some(FingerprintKind::Extrinsic),
            "hybrid" => Some(FingerprintKind::Hybrid),
            _ => None,
        }
    }

    /// All kinds, for sweeps.
    pub const ALL: [FingerprintKind; 3] = [
        FingerprintKind::Intrinsic,
        FingerprintKind::Extrinsic,
        FingerprintKind::Hybrid,
    ];
}

/// Cosine distance between two fingerprints (the metric all indexes use).
pub fn fingerprint_distance(a: &[f32], b: &[f32]) -> f32 {
    mlake_tensor::vector::cosine_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in FingerprintKind::ALL {
            assert_eq!(FingerprintKind::parse(k.name()), Some(k));
        }
        assert_eq!(FingerprintKind::parse("psychic"), None);
    }

    #[test]
    fn distance_zero_for_identical() {
        let v = vec![0.5f32, -0.25, 1.0];
        assert!(fingerprint_distance(&v, &v).abs() < 1e-6);
        assert!(fingerprint_distance(&v, &[0.5, 0.25, -1.0]) > 0.5);
    }
}
