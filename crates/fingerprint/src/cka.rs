//! Linear Centered Kernel Alignment (Kornblith et al. 2019).
//!
//! CKA compares *representations*, not weights: two networks that implement
//! the same function with permuted hidden units score 1.0, which weight
//! cosine cannot do. In the lake it backs fine-grained "are these models
//! functionally the same layer-by-layer?" analysis — the representation-level
//! interpretability the paper's attribution section points to.

use mlake_tensor::{Matrix, TensorError};

/// Linear CKA between two representation matrices with one row per probe.
///
/// `x` is `n × d1`, `y` is `n × d2` (same probe count `n`, any widths).
/// Columns are centered internally. Returns a value in `[0, 1]` (up to
/// numerical noise); errors when probe counts differ or `n < 2`.
pub fn linear_cka(x: &Matrix, y: &Matrix) -> mlake_tensor::Result<f32> {
    if x.rows() != y.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "linear_cka",
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    if x.rows() < 2 {
        return Err(TensorError::Empty("linear_cka probes"));
    }
    let mut xc = x.clone();
    let mut yc = y.clone();
    xc.center_cols();
    yc.center_cols();
    // ‖XᵀY‖_F² / (‖XᵀX‖_F · ‖YᵀY‖_F)
    let xty = xc.transpose().matmul(&yc)?;
    let xtx = xc.transpose().matmul(&xc)?;
    let yty = yc.transpose().matmul(&yc)?;
    let num = f64::from(xty.frobenius_norm()).powi(2);
    let den = f64::from(xtx.frobenius_norm()) * f64::from(yty.frobenius_norm());
    if den <= 0.0 {
        return Ok(0.0);
    }
    Ok((num / den) as f32)
}

/// CKA similarity matrix across a set of representations (symmetric, unit
/// diagonal up to numerical noise).
pub fn cka_matrix(reps: &[Matrix]) -> mlake_tensor::Result<Matrix> {
    let n = reps.len();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = linear_cka(&reps[i], &reps[j])?;
            out.set_at(i, j, v);
            out.set_at(j, i, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::Pcg64;

    fn randmat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Pcg64::new(seed);
        Matrix::randn(rows, cols, &mut rng)
    }

    #[test]
    fn self_similarity_is_one() {
        let x = randmat(20, 6, 1);
        let v = linear_cka(&x, &x).unwrap();
        assert!((v - 1.0).abs() < 1e-4, "{v}");
    }

    #[test]
    fn invariant_to_column_permutation() {
        let x = randmat(20, 6, 2);
        // Permute columns: same representation, different neuron order.
        let perm = [3usize, 0, 5, 1, 4, 2];
        let y = Matrix::from_fn(20, 6, |r, c| x.at(r, perm[c]));
        let v = linear_cka(&x, &y).unwrap();
        assert!((v - 1.0).abs() < 1e-4, "{v}");
    }

    #[test]
    fn invariant_to_isotropic_scaling() {
        let x = randmat(15, 4, 3);
        let y = x.scale(3.7);
        let v = linear_cka(&x, &y).unwrap();
        assert!((v - 1.0).abs() < 1e-4);
    }

    #[test]
    fn independent_representations_score_low() {
        let x = randmat(40, 8, 4);
        let y = randmat(40, 8, 5);
        let v = linear_cka(&x, &y).unwrap();
        assert!(v < 0.5, "{v}");
        assert!(v >= 0.0);
    }

    #[test]
    fn handles_different_widths() {
        let x = randmat(25, 4, 6);
        let y = randmat(25, 9, 7);
        assert!(linear_cka(&x, &y).is_ok());
    }

    #[test]
    fn errors_on_mismatched_probes_or_tiny_input() {
        let x = randmat(10, 4, 8);
        let y = randmat(12, 4, 9);
        assert!(linear_cka(&x, &y).is_err());
        let tiny = randmat(1, 4, 10);
        assert!(linear_cka(&tiny, &tiny).is_err());
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let reps = vec![randmat(18, 5, 11), randmat(18, 7, 12), randmat(18, 5, 13)];
        let m = cka_matrix(&reps).unwrap();
        for i in 0..3 {
            assert!((m.at(i, i) - 1.0).abs() < 1e-4);
            for j in 0..3 {
                assert!((m.at(i, j) - m.at(j, i)).abs() < 1e-6);
            }
        }
    }
}
