//! Weight-space modeling (§5): networks that take *other models' weights* as
//! input and predict model properties.
//!
//! Following Eilertsen et al. ("Classifying the classifier") and Schürholt
//! et al. (Model Zoo), a property classifier is trained on weight-derived
//! feature vectors (our intrinsic fingerprints) with labels such as task
//! domain, transform kind, or base family. The classifier itself is a small
//! softmax model from `mlake-nn` — the lake eats its own dog food.

use mlake_nn::{train_mlp, Activation, LabeledData, Mlp, TrainConfig};
use mlake_tensor::{init::Init, Matrix, Seed, TensorError};

/// A trained weight-space property classifier with its label vocabulary.
#[derive(Debug, Clone)]
pub struct PropertyClassifier {
    model: Mlp,
    labels: Vec<String>,
}

/// Training options for [`PropertyClassifier::train`].
#[derive(Debug, Clone)]
pub struct WeightSpaceConfig {
    /// Hidden width (0 = linear softmax classifier).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for WeightSpaceConfig {
    fn default() -> Self {
        WeightSpaceConfig {
            hidden: 16,
            epochs: 60,
            lr: 0.1,
            seed: 0,
        }
    }
}

impl PropertyClassifier {
    /// Trains on `(feature, label_name)` pairs. Features must share a length;
    /// labels are interned into a vocabulary in first-seen order.
    pub fn train(
        features: &[Vec<f32>],
        labels: &[&str],
        config: &WeightSpaceConfig,
    ) -> mlake_tensor::Result<PropertyClassifier> {
        if features.is_empty() || features.len() != labels.len() {
            return Err(TensorError::Empty("weight-space training set"));
        }
        let dim = features[0].len();
        let mut vocab: Vec<String> = Vec::new();
        let mut y = Vec::with_capacity(labels.len());
        for &l in labels {
            let idx = match vocab.iter().position(|v| v == l) {
                Some(i) => i,
                None => {
                    vocab.push(l.to_string());
                    vocab.len() - 1
                }
            };
            y.push(idx);
        }
        let x = Matrix::from_rows(features)?;
        let data = LabeledData::new(x, y)?;
        let mut sizes = vec![dim];
        if config.hidden > 0 {
            sizes.push(config.hidden);
        }
        sizes.push(vocab.len().max(2));
        let mut rng = Seed::new(config.seed).derive("weightspace-init").rng();
        let mut model = Mlp::new(sizes, Activation::Relu, Init::HeNormal, &mut rng)?;
        let cfg = TrainConfig {
            epochs: config.epochs,
            optimizer: mlake_nn::optim::OptimizerSpec::adam(config.lr * 0.05),
            seed: Seed::new(config.seed).derive("weightspace-train").0,
            ..TrainConfig::default()
        };
        train_mlp(&mut model, &data, &cfg)?;
        Ok(PropertyClassifier {
            model,
            labels: vocab,
        })
    }

    /// Predicts the property label for a feature vector.
    pub fn predict(&self, features: &[f32]) -> mlake_tensor::Result<&str> {
        let class = self.model.predict_class(features)?;
        Ok(self
            .labels
            .get(class)
            .map(String::as_str)
            .unwrap_or("<unknown>"))
    }

    /// Accuracy on a labelled evaluation set.
    pub fn accuracy(&self, features: &[Vec<f32>], labels: &[&str]) -> mlake_tensor::Result<f32> {
        if features.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for (f, &l) in features.iter().zip(labels) {
            if self.predict(f)? == l {
                correct += 1;
            }
        }
        Ok(correct as f32 / features.len() as f32)
    }

    /// The label vocabulary in class order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// Majority-class baseline accuracy for a label set (the floor every
/// weight-space result must clear).
pub fn majority_baseline(labels: &[&str]) -> f32 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlake_tensor::Pcg64;

    /// Synthetic "weights": class-dependent mean shift in feature space.
    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<&'static str>) {
        let mut rng = Pcg64::new(seed);
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        let names = ["legal", "medical", "finance"];
        for i in 0..n {
            let c = i % 3;
            let mut f = vec![0.0f32; 10];
            f[c * 3] = 1.5;
            for v in &mut f {
                *v += rng.normal() * 0.3;
            }
            feats.push(f);
            labels.push(names[c]);
        }
        (feats, labels)
    }

    #[test]
    fn learns_separable_properties() {
        let (train_f, train_l) = synthetic(120, 1);
        let (test_f, test_l) = synthetic(60, 2);
        let clf = PropertyClassifier::train(&train_f, &train_l, &WeightSpaceConfig::default())
            .unwrap();
        let acc = clf.accuracy(&test_f, &test_l).unwrap();
        let base = majority_baseline(&test_l);
        assert!(acc > 0.85, "accuracy {acc}");
        assert!(acc > base + 0.3);
        assert_eq!(clf.labels().len(), 3);
    }

    #[test]
    fn linear_variant_works() {
        let (f, l) = synthetic(90, 3);
        let clf = PropertyClassifier::train(
            &f,
            &l,
            &WeightSpaceConfig {
                hidden: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(clf.accuracy(&f, &l).unwrap() > 0.8);
    }

    #[test]
    fn validation() {
        assert!(PropertyClassifier::train(&[], &[], &WeightSpaceConfig::default()).is_err());
        let (f, _) = synthetic(10, 4);
        assert!(PropertyClassifier::train(&f, &["a"], &WeightSpaceConfig::default()).is_err());
    }

    #[test]
    fn majority_baseline_math() {
        assert_eq!(majority_baseline(&[]), 0.0);
        assert!((majority_baseline(&["a", "a", "b"]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn predict_returns_known_label() {
        let (f, l) = synthetic(90, 5);
        let clf = PropertyClassifier::train(&f, &l, &WeightSpaceConfig::default()).unwrap();
        let p = clf.predict(&f[0]).unwrap();
        assert!(["legal", "medical", "finance"].contains(&p));
    }
}
