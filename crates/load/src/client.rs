//! Minimal HTTP/1.1 client: one keep-alive connection, blocking
//! request/response, `Content-Length` bodies — the exact subset
//! `mlake-server` speaks.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One keep-alive client connection.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Lowercased headers.
    pub headers: Vec<(String, String)>,
}

impl HttpResponse {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl HttpClient {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads the full response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: mlake\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `GET` sugar.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, b"")
    }

    /// `POST` sugar.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        self.request("POST", path, body)
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if !self.fill()? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-response-head",
                ));
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: '{status_line}'"),
                )
            })?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((n, v)) = line.split_once(':') {
                headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let content_len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        self.buf.drain(..head_end + 4);
        while self.buf.len() < content_len {
            if !self.fill()? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-response-body",
                ));
            }
        }
        let body = self.buf.drain(..content_len).collect();
        Ok(HttpResponse {
            status,
            body,
            headers,
        })
    }

    fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n > 0)
    }
}
