//! `mlake-load` CLI: drive a running `mlake-server` and print a report.
//!
//! ```text
//! mlake-load --addr 127.0.0.1:7700 --lake main --clients 4 --ops 200 \
//!            [--open-rate 500] [--write-every 5] [--model NAME]...
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: SocketAddr,
    lake: String,
    clients: usize,
    ops: usize,
    open_rate: Option<f64>,
    write_every: usize,
    models: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mlake-load --addr HOST:PORT [--lake NAME] [--clients N] [--ops N] \
         [--open-rate REQ_PER_S] [--write-every N] [--model NAME]..."
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut lake = "main".to_string();
    let mut clients = 4usize;
    let mut ops = 100usize;
    let mut open_rate = None;
    let mut write_every = 5usize;
    let mut models = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => {
                let v = val("--addr")?;
                addr = Some(v.parse().map_err(|e| format!("bad --addr '{v}': {e}"))?);
            }
            "--lake" => lake = val("--lake")?,
            "--clients" => {
                let v = val("--clients")?;
                clients = v.parse().map_err(|e| format!("bad --clients '{v}': {e}"))?;
            }
            "--ops" => {
                let v = val("--ops")?;
                ops = v.parse().map_err(|e| format!("bad --ops '{v}': {e}"))?;
            }
            "--open-rate" => {
                let v = val("--open-rate")?;
                open_rate = Some(v.parse().map_err(|e| format!("bad --open-rate '{v}': {e}"))?);
            }
            "--write-every" => {
                let v = val("--write-every")?;
                write_every = v.parse().map_err(|e| format!("bad --write-every '{v}': {e}"))?;
            }
            "--model" => models.push(val("--model")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    Ok(Args {
        addr,
        lake,
        clients,
        ops,
        open_rate,
        write_every,
        models,
    })
}

/// Asks the server which models exist when none were named on the CLI.
fn discover_models(addr: SocketAddr, lake: &str) -> Result<Vec<String>, String> {
    let mut client =
        mlake_load::HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let resp = client
        .get(&format!("/v1/lakes/{lake}/models"))
        .map_err(|e| format!("list models: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "list models: HTTP {} {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    match mlake_proto::decode_response(&resp.body) {
        Ok(mlake_proto::ApiResponse::Models { names }) => Ok(names),
        Ok(other) => Err(format!("unexpected response: {other:?}")),
        Err(e) => Err(format!("decode models: {e}")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mlake-load: {e}");
            return usage();
        }
    };
    let models = if args.models.is_empty() {
        match discover_models(args.addr, &args.lake) {
            Ok(names) if !names.is_empty() => names,
            Ok(_) => {
                eprintln!("mlake-load: lake '{}' has no models; pass --model", args.lake);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("mlake-load: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args.models.clone()
    };

    let workload = mlake_load::mixed_workload(&args.lake, models, args.write_every);
    let report = match args.open_rate {
        Some(rate) => {
            mlake_load::run_open_loop(args.addr, args.clients, args.ops, rate, workload)
        }
        None => mlake_load::run_closed_loop(
            args.addr,
            args.clients,
            args.ops,
            Duration::ZERO,
            workload,
        ),
    };
    println!("{}", report.summary());
    if report.failed > 0 || report.transport_errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
