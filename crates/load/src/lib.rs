//! `mlake-load`: load generation for the lake service (DESIGN.md §14).
//!
//! Drives `mlake-server` over N concurrent keep-alive connections with
//! either generator shape:
//!
//! * **Closed loop** ([`run_closed_loop`]) — each client issues its next
//!   request as soon as the previous response lands (optionally after a
//!   fixed think time). Measures capacity: the server is always offered
//!   exactly `clients` outstanding requests.
//! * **Open loop** ([`run_open_loop`]) — arrivals follow a fixed global
//!   rate regardless of completions, the shape that exposes queueing
//!   collapse: when the server falls behind, latency (not offered load)
//!   absorbs the difference.
//!
//! Per-request latency is recorded into `mlake-obs` histograms
//! (`load.http`, plus `load.shed` counts for 503s), so p50/p95/p99 in
//! the [`Report`] come from the same log-bucket histogram machinery as
//! every server-side metric. The client records unconditionally — it
//! measures the *server* under either observability mode, so its
//! percentiles stay real even when the server runs `MLAKE_OBS=off`.
//!
//! This crate is wall-clock-exempt in the `no-wallclock` lint pass (like
//! `mlake-obs` and the benches): pacing arrivals and timing requests is
//! its entire purpose.

pub mod client;

pub use client::{HttpClient, HttpResponse};

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One generated request.
#[derive(Debug, Clone)]
pub struct Op {
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether this op mutates the lake (reported separately).
    pub is_write: bool,
}

impl Op {
    /// A GET read.
    pub fn get(path: impl Into<String>) -> Op {
        Op {
            method: "GET".into(),
            path: path.into(),
            body: Vec::new(),
            is_write: false,
        }
    }

    /// A POST with a JSON body.
    pub fn post(path: impl Into<String>, body: Vec<u8>, is_write: bool) -> Op {
        Op {
            method: "POST".into(),
            path: path.into(),
            body,
            is_write,
        }
    }
}

/// Workload: maps (client index, iteration) to the request to send.
/// Deterministic in its arguments, so runs are reproducible.
pub type Workload = Arc<dyn Fn(usize, usize) -> Op + Send + Sync>;

/// Aggregate results of one run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Requests that returned any HTTP response.
    pub completed: u64,
    /// 2xx responses.
    pub ok: u64,
    /// Deliberate load-shed responses (503).
    pub shed: u64,
    /// Non-2xx, non-503 responses.
    pub failed: u64,
    /// Transport errors (connect/read/write).
    pub transport_errors: u64,
    /// Write ops acknowledged with 2xx (durability accounting).
    pub acked_writes: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub ops_per_s: f64,
    /// `load.http` latency percentiles in milliseconds (p50, p95, p99),
    /// read back from the obs histogram.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

impl Report {
    /// One-line summary for logs and benches.
    pub fn summary(&self) -> String {
        format!(
            "{} ops in {:.2}s ({:.0} ops/s): {} ok, {} shed, {} failed, {} transport; \
             p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms",
            self.completed,
            self.elapsed.as_secs_f64(),
            self.ops_per_s,
            self.ok,
            self.shed,
            self.failed,
            self.transport_errors,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
        )
    }
}

#[derive(Default)]
struct Tallies {
    completed: AtomicU64,
    ok: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    transport: AtomicU64,
    acked_writes: AtomicU64,
}

/// Closed-loop run: `clients` connections, each issuing `ops_per_client`
/// requests back-to-back (plus optional think time between them).
pub fn run_closed_loop(
    addr: SocketAddr,
    clients: usize,
    ops_per_client: usize,
    think: Duration,
    workload: Workload,
) -> Report {
    run(addr, clients, ops_per_client, workload, Pacing::Closed { think })
}

/// Open-loop run: arrivals at a fixed global `rate` (requests/s) split
/// evenly across `clients` connections. A client that falls behind its
/// schedule sends immediately (arrival backlog, not rate reduction).
pub fn run_open_loop(
    addr: SocketAddr,
    clients: usize,
    ops_per_client: usize,
    rate: f64,
    workload: Workload,
) -> Report {
    let interval = Duration::from_secs_f64(clients.max(1) as f64 / rate.max(1.0));
    run(addr, clients, ops_per_client, workload, Pacing::Open { interval })
}

#[derive(Clone, Copy)]
enum Pacing {
    Closed { think: Duration },
    Open { interval: Duration },
}

fn run(
    addr: SocketAddr,
    clients: usize,
    ops_per_client: usize,
    workload: Workload,
    pacing: Pacing,
) -> Report {
    let tallies = Arc::new(Tallies::default());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let workload = Arc::clone(&workload);
            let tallies = Arc::clone(&tallies);
            scope.spawn(move || {
                client_loop(addr, client_idx, ops_per_client, &workload, pacing, &tallies);
            });
        }
    });
    let elapsed = t0.elapsed();

    let completed = tallies.completed.load(Ordering::Relaxed);
    let hist = mlake_obs::snapshot();
    let (p50, p95, p99) = hist
        .histogram("load.http")
        .map(|h| (h.p50_ns, h.p95_ns, h.p99_ns))
        .unwrap_or((0, 0, 0));
    Report {
        completed,
        ok: tallies.ok.load(Ordering::Relaxed),
        shed: tallies.shed.load(Ordering::Relaxed),
        failed: tallies.failed.load(Ordering::Relaxed),
        transport_errors: tallies.transport.load(Ordering::Relaxed),
        acked_writes: tallies.acked_writes.load(Ordering::Relaxed),
        elapsed,
        ops_per_s: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: p50 as f64 / 1e6,
        p95_ms: p95 as f64 / 1e6,
        p99_ms: p99 as f64 / 1e6,
    }
}

fn client_loop(
    addr: SocketAddr,
    client_idx: usize,
    ops: usize,
    workload: &Workload,
    pacing: Pacing,
    tallies: &Tallies,
) {
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            tallies.transport.fetch_add(ops as u64, Ordering::Relaxed);
            return;
        }
    };
    let hist = mlake_obs::registry().histogram_dyn("load.http");
    let start = Instant::now();
    for iter in 0..ops {
        match pacing {
            Pacing::Closed { think } => {
                if think > Duration::ZERO && iter > 0 {
                    std::thread::sleep(think);
                }
            }
            Pacing::Open { interval } => {
                // Fixed arrival schedule: deadline k = k * interval. Late
                // clients send immediately and the backlog shows up as
                // latency — the whole point of an open loop.
                let deadline = interval.saturating_mul(iter as u32);
                let now = start.elapsed();
                if now < deadline {
                    std::thread::sleep(deadline - now);
                }
            }
        }
        let op = workload(client_idx, iter);
        let t = Instant::now();
        match client.request(&op.method, &op.path, &op.body) {
            Ok(resp) => {
                hist.record(t.elapsed().as_nanos() as u64);
                tallies.completed.fetch_add(1, Ordering::Relaxed);
                match resp.status {
                    200..=299 => {
                        tallies.ok.fetch_add(1, Ordering::Relaxed);
                        if op.is_write {
                            tallies.acked_writes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    503 => {
                        tallies.shed.fetch_add(1, Ordering::Relaxed);
                        mlake_obs::registry().counter("load.shed").inc();
                    }
                    _ => {
                        tallies.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                tallies.transport.fetch_add(1, Ordering::Relaxed);
                // The connection is in an unknown state; reconnect.
                match HttpClient::connect(addr) {
                    Ok(c) => client = c,
                    Err(_) => return,
                }
            }
        }
    }
}

/// A standard mixed read/write workload against lake `lake`: reads
/// (list, resolve-by-name via typed endpoint, MLQL query, BM25 text
/// search, similar) and card-update writes, deterministic in
/// (client, iter).
///
/// `model_names` must be non-empty; ops reference those models.
pub fn mixed_workload(lake: &str, model_names: Vec<String>, write_every: usize) -> Workload {
    assert!(!model_names.is_empty(), "mixed_workload needs models");
    let lake = lake.to_string();
    Arc::new(move |client_idx, iter| {
        let model = &model_names[(client_idx * 7 + iter) % model_names.len()];
        if write_every > 0 && iter % write_every == write_every - 1 {
            // Write: bump the model's card through the typed endpoint.
            let mut card = mlake_proto::WireModelCard::skeleton(model.clone(), "load");
            card.notes = format!("load generator update c{client_idx} i{iter}");
            let req = mlake_proto::encode_request(&mlake_proto::ApiRequest::UpdateCard {
                model: mlake_proto::WireRef::Name(model.clone()),
                card,
            });
            return Op::post(format!("/v1/lakes/{lake}/api"), req, true);
        }
        match iter % 5 {
            0 => Op::get(format!("/v1/lakes/{lake}/models")),
            1 => Op::get(format!("/v1/lakes/{lake}/models/{model}")),
            2 => Op::post(
                format!("/v1/lakes/{lake}/query"),
                b"{\"mlql\": \"FIND MODELS\"}".to_vec(),
                false,
            ),
            3 => Op::post(
                format!("/v1/lakes/{lake}/search"),
                // Query terms drawn from card text every populated lake
                // carries ("family N ..." notes); an empty result is
                // still a served 200, so the op works on any lake.
                b"{\"query\": \"family classification\", \"k\": 5}".to_vec(),
                false,
            ),
            _ => Op::get(format!("/v1/lakes/{lake}/models/{model}/similar?kind=hybrid&k=3")),
        }
    })
}
