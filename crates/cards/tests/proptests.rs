//! Property-based tests for cards: serde round trips with arbitrary
//! content, completeness monotonicity, verification consistency.

use mlake_cards::audit::{run_audit, standard_questionnaire};
use mlake_cards::corrupt::{corrupt_card, CardCorruption};
use mlake_cards::{
    verify_card, CardEvidence, Citation, ModelCard, ReportedMetric, TrainingDataRef,
};
use proptest::prelude::*;

fn arb_card() -> impl Strategy<Value = ModelCard> {
    (
        "[a-z0-9-]{1,24}",
        "[a-z0-9:.-]{1,24}",
        proptest::option::of("[a-z ()=0-9.]{1,30}"),
        proptest::collection::vec("[a-z-]{1,12}", 0..3),
        proptest::collection::vec("[a-z]{1,10}", 0..3),
        proptest::collection::vec(("[a-z-]{1,14}", 0.0f32..1.0), 0..4),
        proptest::option::of("[a-z0-9-]{1,20}"),
        any::<u64>(),
    )
        .prop_map(
            |(name, arch, algo, tags, domains, metrics, base, created)| {
                let mut c = ModelCard::skeleton(name, arch);
                c.training_algorithm = algo;
                c.task_tags = tags;
                c.domains = domains;
                c.metrics = metrics
                    .into_iter()
                    .map(|(b, v)| ReportedMetric {
                        benchmark: b,
                        metric: "accuracy".into(),
                        value: v,
                    })
                    .collect();
                c.lineage.base_model = base;
                c.created_at = created;
                c
            },
        )
}

proptest! {
    #[test]
    fn card_json_round_trip(card in arb_card()) {
        let json = card.to_json().unwrap();
        let back = ModelCard::from_json(&json).unwrap();
        prop_assert_eq!(card, back);
    }

    #[test]
    fn completeness_in_unit_interval_and_monotone(card in arb_card()) {
        let c = card.completeness();
        prop_assert!((0.0..=1.0).contains(&c));
        // Adding a training-data reference never lowers completeness.
        let mut fuller = card.clone();
        fuller.training_data.push(TrainingDataRef {
            dataset_name: "extra".into(),
            dataset_id: None,
        });
        prop_assert!(fuller.completeness() >= c);
    }

    #[test]
    fn verification_without_evidence_never_contradicts(card in arb_card()) {
        let report = verify_card(&card, &CardEvidence::default());
        prop_assert!(report.passes());
    }

    #[test]
    fn corruption_never_panics_and_omission_monotone(card in arb_card()) {
        for kind in CardCorruption::ALL {
            let bad = corrupt_card(&card, kind, "alt-base", "alt-domain");
            if matches!(kind, CardCorruption::OmitMetrics | CardCorruption::OmitTrainingData) {
                prop_assert!(bad.completeness() <= card.completeness());
            }
        }
    }

    #[test]
    fn audit_coverage_bounded(card in arb_card()) {
        let report = run_audit(&card, &CardEvidence::default(), &standard_questionnaire());
        prop_assert!((0.0..=1.0).contains(&report.coverage()));
        prop_assert_eq!(report.answers.len(), 8);
    }

    #[test]
    fn citation_key_is_injective_in_timestamp(name in "[a-z-]{1,16}", t1 in any::<u64>(), t2 in any::<u64>()) {
        let cite = |t: u64| Citation {
            model_name: name.clone(),
            version_path: vec![name.clone()],
            graph_timestamp: t,
            lake_name: "lake".into(),
        };
        if t1 != t2 {
            prop_assert_ne!(cite(t1).key(), cite(t2).key());
        } else {
            prop_assert_eq!(cite(t1).key(), cite(t2).key());
        }
    }

    /// Metric inflation on a card whose claims match the evidence is always
    /// caught, for any honest metric set.
    #[test]
    fn inflation_always_detected_when_remeasured(values in proptest::collection::vec(0.05f32..0.9, 1..4)) {
        let mut card = ModelCard::skeleton("m", "a");
        card.metrics = values
            .iter()
            .enumerate()
            .map(|(i, &v)| ReportedMetric {
                benchmark: format!("b{i}"),
                metric: "accuracy".into(),
                value: v,
            })
            .collect();
        let evidence = CardEvidence {
            measured_metrics: card.metrics.clone(),
            ..Default::default()
        };
        prop_assert!(verify_card(&card, &evidence).passes());
        let inflated = corrupt_card(&card, CardCorruption::InflateMetrics, "x", "y");
        prop_assert!(!verify_card(&inflated, &evidence).passes());
    }
}
