//! Card-corruption generator: labelled positives for the verification
//! experiment (E7). Each corruption models a documented hub failure mode —
//! incompleteness (Liang et al.) or active deception (PoisonGPT).

use crate::card::ModelCard;
use serde::{Deserialize, Serialize};

/// Ways a card can be wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CardCorruption {
    /// Training-data section deleted (incompleteness).
    OmitTrainingData,
    /// Metrics section deleted (incompleteness).
    OmitMetrics,
    /// Every claimed metric inflated (benchmark gaming).
    InflateMetrics,
    /// Base-model claim replaced with a false name (provenance laundering).
    FalseBaseModel,
    /// Domain claim swapped (mis-tagging, the Example 1.1 search hazard).
    WrongDomain,
}

impl CardCorruption {
    /// All corruption kinds.
    pub const ALL: [CardCorruption; 5] = [
        CardCorruption::OmitTrainingData,
        CardCorruption::OmitMetrics,
        CardCorruption::InflateMetrics,
        CardCorruption::FalseBaseModel,
        CardCorruption::WrongDomain,
    ];

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            CardCorruption::OmitTrainingData => "omit-training-data",
            CardCorruption::OmitMetrics => "omit-metrics",
            CardCorruption::InflateMetrics => "inflate-metrics",
            CardCorruption::FalseBaseModel => "false-base-model",
            CardCorruption::WrongDomain => "wrong-domain",
        }
    }

    /// Whether verification can catch this corruption from evidence alone
    /// (omissions are detectable as incompleteness, not as contradiction).
    pub fn is_deceptive(self) -> bool {
        matches!(
            self,
            CardCorruption::InflateMetrics
                | CardCorruption::FalseBaseModel
                | CardCorruption::WrongDomain
        )
    }
}

/// Applies a corruption to a copy of `card`. `alt_name` supplies the false
/// base-model claim; `alt_domain` the swapped domain.
pub fn corrupt_card(
    card: &ModelCard,
    corruption: CardCorruption,
    alt_name: &str,
    alt_domain: &str,
) -> ModelCard {
    let mut c = card.clone();
    match corruption {
        CardCorruption::OmitTrainingData => {
            c.training_data.clear();
        }
        CardCorruption::OmitMetrics => {
            c.metrics.clear();
        }
        CardCorruption::InflateMetrics => {
            for m in &mut c.metrics {
                // Push accuracy-like metrics toward 1 and cost-like toward 0:
                // the direction that makes the model look better.
                if m.metric == "accuracy" {
                    m.value = (m.value + 0.5).min(0.999);
                } else {
                    m.value *= 0.3;
                }
            }
        }
        CardCorruption::FalseBaseModel => {
            c.lineage.base_model = Some(alt_name.to_string());
        }
        CardCorruption::WrongDomain => {
            c.domains = vec![alt_domain.to_string()];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::{Lineage, ReportedMetric, TrainingDataRef};

    fn card() -> ModelCard {
        let mut c = ModelCard::skeleton("legal-model", "mlp:8-16-3:relu");
        c.domains = vec!["legal".into()];
        c.training_data = vec![TrainingDataRef {
            dataset_name: "legal-tab-v1".into(),
            dataset_id: Some(0),
        }];
        c.metrics = vec![
            ReportedMetric {
                benchmark: "b".into(),
                metric: "accuracy".into(),
                value: 0.8,
            },
            ReportedMetric {
                benchmark: "b".into(),
                metric: "ece".into(),
                value: 0.1,
            },
        ];
        c.lineage = Lineage {
            base_model: Some("true-base".into()),
            transform: Some("finetune".into()),
            second_parent: None,
        };
        c
    }

    #[test]
    fn omissions_reduce_completeness() {
        let c = card();
        let before = c.completeness();
        let omitted = corrupt_card(&c, CardCorruption::OmitTrainingData, "x", "y");
        assert!(omitted.training_data.is_empty());
        assert!(omitted.completeness() < before);
        let no_metrics = corrupt_card(&c, CardCorruption::OmitMetrics, "x", "y");
        assert!(no_metrics.metrics.is_empty());
    }

    #[test]
    fn inflation_moves_in_flattering_direction() {
        let c = card();
        let inflated = corrupt_card(&c, CardCorruption::InflateMetrics, "x", "y");
        assert!(inflated.metrics[0].value > c.metrics[0].value); // accuracy up
        assert!(inflated.metrics[1].value < c.metrics[1].value); // ece down
        assert!(inflated.metrics[0].value < 1.0);
    }

    #[test]
    fn lineage_and_domain_swaps() {
        let c = card();
        let false_base = corrupt_card(&c, CardCorruption::FalseBaseModel, "evil-base", "y");
        assert_eq!(false_base.lineage.base_model.as_deref(), Some("evil-base"));
        let wrong = corrupt_card(&c, CardCorruption::WrongDomain, "x", "medical");
        assert_eq!(wrong.domains, vec!["medical".to_string()]);
        // Original untouched.
        assert_eq!(c.domains, vec!["legal".to_string()]);
    }

    #[test]
    fn deceptiveness_flags() {
        assert!(CardCorruption::InflateMetrics.is_deceptive());
        assert!(!CardCorruption::OmitMetrics.is_deceptive());
        let names: std::collections::HashSet<_> =
            CardCorruption::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
