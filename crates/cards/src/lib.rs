//! # mlake-cards
//!
//! Model documentation as data: model cards (Mitchell et al. 2019),
//! nutritional-label sections (Stoyanovich & Howe 2019), **card
//! verification** (§4: "there remains a critical gap in the verification of
//! model cards… people could intentionally misinform model users with
//! malicious intent" — the PoisonGPT scenario), **citations** (§6 Data and
//! Model Citation) and **audit questionnaires** (§6 Auditing).
//!
//! This crate is deliberately model-free: it defines the document schemas
//! and the pure logic over them (completeness, corruption, verification,
//! citation, audit). The evidence that feeds verification — measured
//! benchmark scores, recovered lineage — is produced by the lake
//! (`mlake-core`) and passed in, keeping the trust boundary explicit.

pub mod audit;
pub mod card;
pub mod citation;
pub mod corrupt;
pub mod verify;

pub use card::{Lineage, ModelCard, NutritionalLabel, ReportedMetric, TrainingDataRef};
pub use citation::Citation;
pub use corrupt::{corrupt_card, CardCorruption};
pub use verify::{verify_card, CardEvidence, Finding, Severity, VerificationReport};
