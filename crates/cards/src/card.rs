//! The model-card schema, after Mitchell et al. (2019): model details,
//! intended use, training data, metrics, quantitative analyses — plus the
//! lineage fields hubs have recently added (§4: "Hugging Face recently
//! introduced new metadata fields… enabling users to specify the base model
//! and explain how it has been modified").

use serde::{Deserialize, Serialize};

/// Reference to a training dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingDataRef {
    /// Human-readable dataset name.
    pub dataset_name: String,
    /// Lake dataset id, when known.
    pub dataset_id: Option<u64>,
}

/// A metric value the card claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportedMetric {
    /// Benchmark name.
    pub benchmark: String,
    /// Metric name ("accuracy", "perplexity", …).
    pub metric: String,
    /// Claimed value.
    pub value: f32,
}

/// Nutritional-label style quantitative analysis section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NutritionalLabel {
    /// Demographic parity gap measured on the reference fairness probe.
    pub demographic_parity_gap: Option<f32>,
    /// Per-group accuracies `(g0, g1)`.
    pub group_accuracies: Option<(f32, f32)>,
    /// Expected calibration error.
    pub calibration_ece: Option<f32>,
    /// Energy proxy: parameter count (stand-in for the carbon reporting of
    /// Lacoste et al., which needs hardware telemetry we do not simulate).
    pub parameter_count: Option<u64>,
}

/// Lineage section: how this model relates to others.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Lineage {
    /// Claimed base (parent) model name.
    pub base_model: Option<String>,
    /// Claimed derivation operator name ("finetune", "lora", …).
    pub transform: Option<String>,
    /// Claimed second parent (stitch/merge).
    pub second_parent: Option<String>,
}

/// A model card.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCard {
    /// Model name the card documents.
    pub model_name: String,
    /// Architecture signature (e.g. `mlp:8-16-3:relu`).
    pub architecture: String,
    /// Training-algorithm description — the `A` of `(D, A)`.
    pub training_algorithm: Option<String>,
    /// Intended task tags (e.g. `"summarization"`, `"classification"`).
    pub task_tags: Vec<String>,
    /// Intended domains (e.g. `"legal"`).
    pub domains: Vec<String>,
    /// Training data references — the `D` of `(D, A)`.
    pub training_data: Vec<TrainingDataRef>,
    /// Claimed evaluation results.
    pub metrics: Vec<ReportedMetric>,
    /// Quantitative analysis / nutritional label.
    pub quantitative: Option<NutritionalLabel>,
    /// Lineage claims.
    pub lineage: Lineage,
    /// Free-form notes.
    pub notes: String,
    /// Logical creation timestamp (lake event counter).
    pub created_at: u64,
}

impl ModelCard {
    /// A minimal card with only the mandatory identity fields.
    pub fn skeleton(model_name: impl Into<String>, architecture: impl Into<String>) -> ModelCard {
        ModelCard {
            model_name: model_name.into(),
            architecture: architecture.into(),
            training_algorithm: None,
            task_tags: Vec::new(),
            domains: Vec::new(),
            training_data: Vec::new(),
            metrics: Vec::new(),
            quantitative: None,
            lineage: Lineage::default(),
            notes: String::new(),
            created_at: 0,
        }
    }

    /// Completeness in `[0, 1]`: the fraction of the seven optional card
    /// sections that are filled (the measurement axis of Liang et al.'s
    /// 32K-card study, reproduced for E7).
    pub fn completeness(&self) -> f32 {
        let sections = [
            self.training_algorithm.is_some(),
            !self.task_tags.is_empty(),
            !self.domains.is_empty(),
            !self.training_data.is_empty(),
            !self.metrics.is_empty(),
            self.quantitative.is_some(),
            self.lineage.base_model.is_some() || self.lineage.transform.is_some(),
        ];
        sections.iter().filter(|&&s| s).count() as f32 / sections.len() as f32
    }

    /// Serialises to pretty JSON (the hub interchange format).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a JSON card.
    pub fn from_json(s: &str) -> Result<ModelCard, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Looks up a claimed metric.
    pub fn claimed_metric(&self, benchmark: &str, metric: &str) -> Option<f32> {
        self.metrics
            .iter()
            .find(|m| m.benchmark == benchmark && m.metric == metric)
            .map(|m| m.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_card() -> ModelCard {
        ModelCard {
            model_name: "legal-mlp16-base-f0".into(),
            architecture: "mlp:8-16-3:relu".into(),
            training_algorithm: Some("sgd(lr=0.1) epochs=15".into()),
            task_tags: vec!["classification".into()],
            domains: vec!["legal".into()],
            training_data: vec![TrainingDataRef {
                dataset_name: "legal-tab-v1".into(),
                dataset_id: Some(0),
            }],
            metrics: vec![ReportedMetric {
                benchmark: "legal-holdout".into(),
                metric: "accuracy".into(),
                value: 0.93,
            }],
            quantitative: Some(NutritionalLabel {
                demographic_parity_gap: Some(0.02),
                group_accuracies: Some((0.92, 0.94)),
                calibration_ece: Some(0.05),
                parameter_count: Some(195),
            }),
            lineage: Lineage {
                base_model: None,
                transform: None,
                second_parent: None,
            },
            notes: "Foundation model of family 0".into(),
            created_at: 17,
        }
    }

    #[test]
    fn completeness_scale() {
        let skeleton = ModelCard::skeleton("m", "mlp:2-2:relu");
        assert_eq!(skeleton.completeness(), 0.0);
        let full = full_card();
        // Six of seven sections filled (no lineage for a base model).
        assert!((full.completeness() - 6.0 / 7.0).abs() < 1e-6);
        let mut with_lineage = full.clone();
        with_lineage.lineage.base_model = Some("x".into());
        assert!((with_lineage.completeness() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn json_round_trip() {
        let card = full_card();
        let json = card.to_json().unwrap();
        let back = ModelCard::from_json(&json).unwrap();
        assert_eq!(card, back);
        assert!(ModelCard::from_json("{not json").is_err());
    }

    #[test]
    fn claimed_metric_lookup() {
        let card = full_card();
        assert_eq!(card.claimed_metric("legal-holdout", "accuracy"), Some(0.93));
        assert_eq!(card.claimed_metric("legal-holdout", "ece"), None);
        assert_eq!(card.claimed_metric("other", "accuracy"), None);
    }
}
