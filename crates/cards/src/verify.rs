//! Card verification: check documentation claims against lake-measured
//! evidence (§4: "the state-of-the-art in verifying the documentation of a
//! model is notably in its infancy").
//!
//! The verifier never trusts the card: reported metrics are compared against
//! re-measured scores, the lineage claim against the recovered version
//! graph, and the domain claim against the weight-space domain prediction.

use crate::card::{ModelCard, ReportedMetric};
use serde::{Deserialize, Serialize};

/// Lake-measured evidence about a model (produced by `mlake-core`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CardEvidence {
    /// Re-measured benchmark results.
    pub measured_metrics: Vec<ReportedMetric>,
    /// Parent name recovered by version-graph analysis.
    pub recovered_base: Option<String>,
    /// Transform name recovered from the weight delta.
    pub recovered_transform: Option<String>,
    /// Domain predicted from behaviour/weights.
    pub predicted_domain: Option<String>,
}

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Section missing — incomplete but not contradicted.
    Incomplete,
    /// Claim contradicted by evidence.
    Contradicted,
}

/// One verification finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Card field concerned.
    pub field: String,
    /// What the card claims.
    pub claimed: String,
    /// What the lake observed.
    pub observed: String,
    /// Severity.
    pub severity: Severity,
}

/// The verification outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// All findings, contradictions first.
    pub findings: Vec<Finding>,
    /// Card completeness at verification time.
    pub completeness: f32,
}

impl VerificationReport {
    /// `true` when no claim was contradicted (omissions alone still pass).
    pub fn passes(&self) -> bool {
        !self
            .findings
            .iter()
            .any(|f| f.severity == Severity::Contradicted)
    }

    /// Number of contradicted claims.
    pub fn contradictions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Contradicted)
            .count()
    }
}

/// Relative tolerance for metric agreement: re-measurement on the lake's
/// own benchmark should reproduce honest claims within this bound.
pub const METRIC_TOLERANCE: f32 = 0.05;

/// Verifies `card` against `evidence`.
pub fn verify_card(card: &ModelCard, evidence: &CardEvidence) -> VerificationReport {
    let mut findings = Vec::new();

    // Metrics: every claimed metric that the lake re-measured must agree.
    for claim in &card.metrics {
        if let Some(measured) = evidence
            .measured_metrics
            .iter()
            .find(|m| m.benchmark == claim.benchmark && m.metric == claim.metric)
        {
            let scale = measured.value.abs().max(1e-3);
            if (claim.value - measured.value).abs() / scale > METRIC_TOLERANCE {
                findings.push(Finding {
                    field: format!("metrics/{}/{}", claim.benchmark, claim.metric),
                    claimed: format!("{:.4}", claim.value),
                    observed: format!("{:.4}", measured.value),
                    severity: Severity::Contradicted,
                });
            }
        }
    }
    if card.metrics.is_empty() && !evidence.measured_metrics.is_empty() {
        findings.push(Finding {
            field: "metrics".into(),
            claimed: "<missing>".into(),
            observed: format!("{} measurable benchmarks", evidence.measured_metrics.len()),
            severity: Severity::Incomplete,
        });
    }

    // Lineage: a claimed base must match the recovered parent.
    if let (Some(claimed), Some(recovered)) =
        (&card.lineage.base_model, &evidence.recovered_base)
    {
        if claimed != recovered {
            findings.push(Finding {
                field: "lineage/base_model".into(),
                claimed: claimed.clone(),
                observed: recovered.clone(),
                severity: Severity::Contradicted,
            });
        }
    }
    if let (Some(claimed), Some(recovered)) =
        (&card.lineage.transform, &evidence.recovered_transform)
    {
        if claimed != recovered {
            findings.push(Finding {
                field: "lineage/transform".into(),
                claimed: claimed.clone(),
                observed: recovered.clone(),
                severity: Severity::Contradicted,
            });
        }
    }
    if card.lineage.base_model.is_none() && evidence.recovered_base.is_some() {
        findings.push(Finding {
            field: "lineage/base_model".into(),
            claimed: "<missing>".into(),
            observed: evidence.recovered_base.clone().unwrap_or_default(),
            severity: Severity::Incomplete,
        });
    }

    // Domain: claimed domains should include the behaviour-predicted one.
    if let Some(predicted) = &evidence.predicted_domain {
        if !card.domains.is_empty() && !card.domains.iter().any(|d| d == predicted) {
            findings.push(Finding {
                field: "domains".into(),
                claimed: card.domains.join(","),
                observed: predicted.clone(),
                severity: Severity::Contradicted,
            });
        }
        if card.domains.is_empty() {
            findings.push(Finding {
                field: "domains".into(),
                claimed: "<missing>".into(),
                observed: predicted.clone(),
                severity: Severity::Incomplete,
            });
        }
    }

    // Training data omission is an incompleteness finding.
    if card.training_data.is_empty() {
        findings.push(Finding {
            field: "training_data".into(),
            claimed: "<missing>".into(),
            observed: "models must document D (§2)".into(),
            severity: Severity::Incomplete,
        });
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    VerificationReport {
        findings,
        completeness: card.completeness(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::{Lineage, TrainingDataRef};
    use crate::corrupt::{corrupt_card, CardCorruption};

    fn honest_card() -> ModelCard {
        let mut c = ModelCard::skeleton("legal-ft-7", "mlp:8-16-3:relu");
        c.domains = vec!["legal".into()];
        c.training_data = vec![TrainingDataRef {
            dataset_name: "legal-tab-v1".into(),
            dataset_id: Some(0),
        }];
        c.metrics = vec![ReportedMetric {
            benchmark: "legal-holdout".into(),
            metric: "accuracy".into(),
            value: 0.91,
        }];
        c.lineage = Lineage {
            base_model: Some("legal-mlp16-base-f0".into()),
            transform: Some("finetune".into()),
            second_parent: None,
        };
        c
    }

    fn evidence() -> CardEvidence {
        CardEvidence {
            measured_metrics: vec![ReportedMetric {
                benchmark: "legal-holdout".into(),
                metric: "accuracy".into(),
                value: 0.905,
            }],
            recovered_base: Some("legal-mlp16-base-f0".into()),
            recovered_transform: Some("finetune".into()),
            predicted_domain: Some("legal".into()),
        }
    }

    #[test]
    fn honest_card_passes() {
        let report = verify_card(&honest_card(), &evidence());
        assert!(report.passes(), "{:#?}", report.findings);
        assert_eq!(report.contradictions(), 0);
    }

    #[test]
    fn inflated_metrics_contradicted() {
        let bad = corrupt_card(&honest_card(), CardCorruption::InflateMetrics, "x", "y");
        let report = verify_card(&bad, &evidence());
        assert!(!report.passes());
        assert!(report
            .findings
            .iter()
            .any(|f| f.field.starts_with("metrics/") && f.severity == Severity::Contradicted));
    }

    #[test]
    fn false_base_contradicted() {
        let bad = corrupt_card(&honest_card(), CardCorruption::FalseBaseModel, "evil-base", "y");
        let report = verify_card(&bad, &evidence());
        assert!(!report.passes());
        assert!(report
            .findings
            .iter()
            .any(|f| f.field == "lineage/base_model"));
    }

    #[test]
    fn wrong_domain_contradicted() {
        let bad = corrupt_card(&honest_card(), CardCorruption::WrongDomain, "x", "medical");
        let report = verify_card(&bad, &evidence());
        assert!(!report.passes());
    }

    #[test]
    fn omissions_flagged_but_pass() {
        let bad = corrupt_card(&honest_card(), CardCorruption::OmitTrainingData, "x", "y");
        let report = verify_card(&bad, &evidence());
        assert!(report.passes());
        assert!(report
            .findings
            .iter()
            .any(|f| f.field == "training_data" && f.severity == Severity::Incomplete));
        let no_metrics = corrupt_card(&honest_card(), CardCorruption::OmitMetrics, "x", "y");
        let report = verify_card(&no_metrics, &evidence());
        assert!(report.passes());
        assert!(report.findings.iter().any(|f| f.field == "metrics"));
    }

    #[test]
    fn contradictions_sort_first() {
        let mut bad = corrupt_card(&honest_card(), CardCorruption::FalseBaseModel, "evil", "y");
        bad.training_data.clear();
        let report = verify_card(&bad, &evidence());
        assert_eq!(report.findings[0].severity, Severity::Contradicted);
    }

    #[test]
    fn no_evidence_no_contradictions() {
        let report = verify_card(&honest_card(), &CardEvidence::default());
        assert!(report.passes());
    }
}
