//! Compliance auditing (§6): "the model document generation application
//! procedure can be repurposed for auditing by creating a template
//! questionnaire and using the information from the model lake to generate a
//! draft response with proof or explanation about how a requirement is
//! fulfilled."

use crate::card::ModelCard;
use crate::verify::CardEvidence;
use serde::{Deserialize, Serialize};

/// An audit question category (mirrors AI-Act-style questionnaires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditCategory {
    /// Is the training data documented?
    DataGovernance,
    /// Is provenance/lineage established?
    Provenance,
    /// Are performance claims substantiated?
    Performance,
    /// Are fairness properties measured?
    Fairness,
    /// Is the documentation itself trustworthy?
    Transparency,
}

/// One audit question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditQuestion {
    /// Stable identifier, e.g. `"DG-1"`.
    pub id: String,
    /// Category.
    pub category: AuditCategory,
    /// The question text.
    pub text: String,
}

/// The audit answer for one question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditAnswer {
    /// Question id.
    pub question_id: String,
    /// Whether the requirement is satisfied by the evidence.
    pub satisfied: bool,
    /// Supporting explanation with pointers to the evidence used.
    pub explanation: String,
}

/// A complete audit report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Audited model name.
    pub model_name: String,
    /// Answers in questionnaire order.
    pub answers: Vec<AuditAnswer>,
}

impl AuditReport {
    /// Fraction of requirements satisfied.
    pub fn coverage(&self) -> f32 {
        if self.answers.is_empty() {
            return 0.0;
        }
        self.answers.iter().filter(|a| a.satisfied).count() as f32 / self.answers.len() as f32
    }

    /// Ids of unsatisfied requirements.
    pub fn gaps(&self) -> Vec<&str> {
        self.answers
            .iter()
            .filter(|a| !a.satisfied)
            .map(|a| a.question_id.as_str())
            .collect()
    }
}

/// The standard questionnaire shipped with the lake.
pub fn standard_questionnaire() -> Vec<AuditQuestion> {
    let q = |id: &str, category: AuditCategory, text: &str| AuditQuestion {
        id: id.into(),
        category,
        text: text.into(),
    };
    vec![
        q("DG-1", AuditCategory::DataGovernance, "Is the training data identified?"),
        q("DG-2", AuditCategory::DataGovernance, "Is the training algorithm documented?"),
        q("PR-1", AuditCategory::Provenance, "Is the model's base/lineage established?"),
        q("PR-2", AuditCategory::Provenance, "Does the claimed lineage match lake-recovered lineage?"),
        q("PF-1", AuditCategory::Performance, "Are evaluation results reported?"),
        q("PF-2", AuditCategory::Performance, "Do reported results reproduce under lake re-measurement?"),
        q("FA-1", AuditCategory::Fairness, "Is a fairness/bias analysis present?"),
        q("TR-1", AuditCategory::Transparency, "Does the card pass verification without contradictions?"),
    ]
}

/// Auto-answers the questionnaire from a card plus lake evidence.
pub fn run_audit(
    card: &ModelCard,
    evidence: &CardEvidence,
    questions: &[AuditQuestion],
) -> AuditReport {
    let verification = crate::verify::verify_card(card, evidence);
    let metric_contradictions = verification
        .findings
        .iter()
        .filter(|f| {
            f.field.starts_with("metrics/")
                && f.severity == crate::verify::Severity::Contradicted
        })
        .count();
    let lineage_contradictions = verification
        .findings
        .iter()
        .filter(|f| {
            f.field.starts_with("lineage/")
                && f.severity == crate::verify::Severity::Contradicted
        })
        .count();
    let answers = questions
        .iter()
        .map(|q| {
            let (satisfied, explanation) = match q.id.as_str() {
                "DG-1" => (
                    !card.training_data.is_empty(),
                    format!("{} training dataset reference(s) on card", card.training_data.len()),
                ),
                "DG-2" => (
                    card.training_algorithm.is_some(),
                    card.training_algorithm
                        .clone()
                        .unwrap_or_else(|| "training algorithm undocumented".into()),
                ),
                "PR-1" => (
                    card.lineage.base_model.is_some() || evidence.recovered_base.is_some(),
                    format!(
                        "card base: {:?}; lake-recovered base: {:?}",
                        card.lineage.base_model, evidence.recovered_base
                    ),
                ),
                "PR-2" => (
                    lineage_contradictions == 0,
                    format!("{lineage_contradictions} lineage contradiction(s) found"),
                ),
                "PF-1" => (
                    !card.metrics.is_empty(),
                    format!("{} reported metric(s)", card.metrics.len()),
                ),
                "PF-2" => (
                    metric_contradictions == 0 && !evidence.measured_metrics.is_empty(),
                    format!(
                        "{} re-measured benchmark(s), {metric_contradictions} contradiction(s)",
                        evidence.measured_metrics.len()
                    ),
                ),
                "FA-1" => (
                    card.quantitative
                        .as_ref()
                        .is_some_and(|n| n.demographic_parity_gap.is_some()),
                    "nutritional-label fairness section".into(),
                ),
                "TR-1" => (
                    verification.passes(),
                    format!("{} contradiction(s) in verification", verification.contradictions()),
                ),
                _ => (false, "unknown requirement".into()),
            };
            AuditAnswer {
                question_id: q.id.clone(),
                satisfied,
                explanation,
            }
        })
        .collect();
    AuditReport {
        model_name: card.model_name.clone(),
        answers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::{Lineage, NutritionalLabel, ReportedMetric, TrainingDataRef};

    fn good_card() -> ModelCard {
        let mut c = ModelCard::skeleton("m", "mlp:2-2:relu");
        c.training_algorithm = Some("sgd".into());
        c.training_data = vec![TrainingDataRef {
            dataset_name: "d".into(),
            dataset_id: Some(0),
        }];
        c.metrics = vec![ReportedMetric {
            benchmark: "b".into(),
            metric: "accuracy".into(),
            value: 0.9,
        }];
        c.quantitative = Some(NutritionalLabel {
            demographic_parity_gap: Some(0.01),
            group_accuracies: None,
            calibration_ece: None,
            parameter_count: Some(10),
        });
        c.lineage = Lineage {
            base_model: Some("base".into()),
            transform: Some("finetune".into()),
            second_parent: None,
        };
        c
    }

    fn good_evidence() -> CardEvidence {
        CardEvidence {
            measured_metrics: vec![ReportedMetric {
                benchmark: "b".into(),
                metric: "accuracy".into(),
                value: 0.9,
            }],
            recovered_base: Some("base".into()),
            recovered_transform: Some("finetune".into()),
            predicted_domain: None,
        }
    }

    #[test]
    fn compliant_model_has_full_coverage() {
        let report = run_audit(&good_card(), &good_evidence(), &standard_questionnaire());
        assert_eq!(report.coverage(), 1.0, "gaps: {:?}", report.gaps());
        assert!(report.gaps().is_empty());
    }

    #[test]
    fn undocumented_model_fails_governance() {
        let bare = ModelCard::skeleton("m", "mlp:2-2:relu");
        let report = run_audit(&bare, &CardEvidence::default(), &standard_questionnaire());
        assert!(report.coverage() < 0.5);
        assert!(report.gaps().contains(&"DG-1"));
        assert!(report.gaps().contains(&"PF-1"));
    }

    #[test]
    fn lying_card_fails_transparency() {
        let mut card = good_card();
        card.lineage.base_model = Some("someone-else".into());
        let report = run_audit(&card, &good_evidence(), &standard_questionnaire());
        assert!(report.gaps().contains(&"PR-2"));
        assert!(report.gaps().contains(&"TR-1"));
    }

    #[test]
    fn questionnaire_has_distinct_ids() {
        let qs = standard_questionnaire();
        let ids: std::collections::HashSet<_> = qs.iter().map(|q| q.id.as_str()).collect();
        assert_eq!(ids.len(), qs.len());
        assert_eq!(qs.len(), 8);
    }

    #[test]
    fn empty_report_coverage() {
        let r = AuditReport {
            model_name: "m".into(),
            answers: vec![],
        };
        assert_eq!(r.coverage(), 0.0);
    }
}
