//! Model citation (§6): "if a particular model is used, the platform would
//! refer to its versioning graph and generate a citation with the model
//! version and timestamp of the graph. Upon any updates of the graph, a new
//! citation would be generated."

use serde::{Deserialize, Serialize};

/// A generated, graph-versioned citation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Citation {
    /// Cited model name.
    pub model_name: String,
    /// Lineage path from the root, root first (e.g. `["base", "ft", "me"]`).
    pub version_path: Vec<String>,
    /// Logical timestamp of the version graph at citation time.
    pub graph_timestamp: u64,
    /// Lake identifier.
    pub lake_name: String,
}

impl Citation {
    /// The citation key, stable for a given model + graph state, e.g.
    /// `lake/legal-ft-7@v42` — changes exactly when the graph changes.
    pub fn key(&self) -> String {
        format!(
            "{}/{}@v{}",
            self.lake_name, self.model_name, self.graph_timestamp
        )
    }

    /// One-line human-readable citation.
    pub fn text(&self) -> String {
        let lineage = if self.version_path.len() > 1 {
            format!(" (derived: {})", self.version_path.join(" → "))
        } else {
            String::new()
        };
        format!(
            "Model \"{}\"{}, model lake \"{}\", version graph snapshot v{}.",
            self.model_name, lineage, self.lake_name, self.graph_timestamp
        )
    }

    /// BibTeX-style entry for papers and reports.
    pub fn bibtex(&self) -> String {
        let sanitized: String = self
            .model_name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        format!(
            "@misc{{{key},\n  title = {{{name}}},\n  howpublished = {{Model lake \"{lake}\"}},\n  note = {{Version graph snapshot v{ts}; lineage: {path}}}\n}}",
            key = sanitized,
            name = self.model_name,
            lake = self.lake_name,
            ts = self.graph_timestamp,
            path = self.version_path.join(" -> "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn citation(ts: u64) -> Citation {
        Citation {
            model_name: "legal-ft-7".into(),
            version_path: vec!["legal-mlp16-base-f0".into(), "legal-ft-7".into()],
            graph_timestamp: ts,
            lake_name: "benchmark-lake".into(),
        }
    }

    #[test]
    fn key_changes_with_graph_state() {
        let a = citation(42);
        let b = citation(43);
        assert_eq!(a.key(), "benchmark-lake/legal-ft-7@v42");
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn text_mentions_lineage() {
        let c = citation(42);
        let t = c.text();
        assert!(t.contains("legal-ft-7"));
        assert!(t.contains("→"));
        assert!(t.contains("v42"));
        // Root model: no lineage clause.
        let root = Citation {
            version_path: vec!["base".into()],
            ..citation(1)
        };
        assert!(!root.text().contains("derived"));
    }

    #[test]
    fn bibtex_is_well_formed() {
        let b = citation(7).bibtex();
        assert!(b.starts_with("@misc{legal-ft-7,"));
        assert!(b.contains("snapshot v7"));
        assert!(b.ends_with('}'));
    }
}
