//! `mlake-server`: the lake's wire (DESIGN.md §14).
//!
//! A from-scratch, zero-dependency HTTP/1.1 service layer over the
//! [`mlake_core::ModelLake`] facade:
//!
//! * **Protocol** — `mlake-proto`'s `ApiRequest`/`ApiResponse` JSON on a
//!   hand-rolled HTTP/1.1 subset ([`http`]): keep-alive,
//!   `Content-Length` bodies, one in-flight request per connection.
//! * **Execution** — connection threads only parse and write; lake work
//!   is queued on a bounded [`dispatch::Dispatcher`] and batched onto
//!   the shared `mlake-par` pool. A full queue sheds load with `503` +
//!   `Retry-After` instead of building unbounded memory ([`dispatch`]).
//! * **Tenancy** — `/v1/lakes/{lake}/...` routes through a
//!   [`router::LakeRouter`] holding any number of lakes, in-process or
//!   opened from disk.
//! * **Shutdown** — [`server::Server::shutdown`] stops accepting, lets
//!   in-flight requests finish, drains the queue, then syncs and
//!   quiesces every lake: no acknowledged write is ever lost.
//!
//! ```ignore
//! let router = Arc::new(LakeRouter::new());
//! router.register("main", ModelLake::new(LakeConfig::default()));
//! let server = Server::bind(router, "127.0.0.1:0", ServerConfig::default())?;
//! println!("serving on {}", server.addr());
//! // ... later:
//! server.shutdown()?;
//! ```

pub mod api;
pub mod dispatch;
pub mod http;
pub mod router;
pub mod server;

pub use api::Api;
pub use dispatch::{DispatchHandle, Dispatcher};
pub use router::LakeRouter;
pub use server::{Server, ServerConfig};
