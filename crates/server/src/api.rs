//! Typed request handlers: one [`Api`] per lake, mapping every
//! [`ApiRequest`] variant 1:1 onto the [`ModelLake`] facade.
//!
//! The server contains no lake logic — handlers call exactly one facade
//! method (which takes `op_lock`/`resolve` internally) and translate the
//! result to the wire. Every handled request opens an obs span named
//! `http.<label>`, so served-path latency percentiles fall out of the
//! standard histogram machinery; the `facade-span` lint pass enforces
//! this for `Api` just as it does for `ModelLake`.

use mlake_core::{LakeError, ModelLake};
use mlake_proto::{ApiError, ApiRequest, ApiResponse, ScoredHit, SimilarHit, status_for};
use std::sync::Arc;

/// Handler facade over one lake.
#[derive(Clone)]
pub struct Api {
    lake: Arc<ModelLake>,
}

impl Api {
    /// Wraps a routed lake.
    // lint: no-span — constructor; spans open per handled request
    pub fn new(lake: Arc<ModelLake>) -> Api {
        Api { lake }
    }

    /// Handles one request, mapping facade errors through the stable
    /// [`mlake_core::ErrorKind`] → status taxonomy. Returns the response
    /// plus the HTTP status it should travel under.
    pub fn handle(&self, req: ApiRequest) -> (u16, ApiResponse) {
        let _span = mlake_obs::span(span_name(&req));
        mlake_obs::registry().counter("http.requests").inc();
        match self.dispatch(req) {
            Ok(resp) => (200, resp),
            Err(e) => {
                let err = ApiError::from_lake(&e);
                mlake_obs::registry()
                    .counter_dyn(&format!("http.error.{}", err.kind))
                    .inc();
                (err.status, ApiResponse::Error(err))
            }
        }
    }

    fn dispatch(&self, req: ApiRequest) -> Result<ApiResponse, LakeError> {
        match req {
            ApiRequest::Ingest { name, model, card } => {
                let id = self.lake.ingest_model(&name, &model, card)?;
                Ok(ApiResponse::Ingested { id: id.0 })
            }
            ApiRequest::Similar { model, kind, k } => {
                let mut scratch = None;
                let mref = model.as_model_ref(&mut scratch)?;
                let hits = self
                    .lake
                    .similar(mref, kind, k)?
                    .into_iter()
                    .map(|(id, similarity)| SimilarHit { id: id.0, similarity })
                    .collect();
                Ok(ApiResponse::Similar { hits })
            }
            ApiRequest::TextSearch { query, k } => {
                let hits = self
                    .lake
                    .text_search(&query, k)?
                    .into_iter()
                    .map(|(id, score)| ScoredHit { id: id.0, score })
                    .collect();
                Ok(ApiResponse::Scored { hits })
            }
            ApiRequest::HybridSearch { query, model, kind, k } => {
                let mut scratch = None;
                let mref = model.as_model_ref(&mut scratch)?;
                let hits = self
                    .lake
                    .hybrid_search(&query, mref, kind, k)?
                    .into_iter()
                    .map(|(id, score)| ScoredHit { id: id.0, score })
                    .collect();
                Ok(ApiResponse::Scored { hits })
            }
            ApiRequest::Query { mlql } => {
                let hits = self.lake.prepare(&mlql)?.run()?;
                Ok(ApiResponse::Hits { hits })
            }
            ApiRequest::Explain { mlql } => {
                let steps = self.lake.prepare(&mlql)?.explain();
                Ok(ApiResponse::Plan { steps })
            }
            ApiRequest::Resolve { model } => {
                let mut scratch = None;
                let mref = model.as_model_ref(&mut scratch)?;
                let id = self.lake.resolve(mref)?;
                let entry = self.lake.entry(id)?;
                Ok(ApiResponse::Resolved {
                    id: id.0,
                    name: entry.name,
                    digest: entry.digest.to_hex(),
                })
            }
            ApiRequest::Cite { model } => {
                let mut scratch = None;
                let mref = model.as_model_ref(&mut scratch)?;
                let citation = self.lake.cite(mref)?;
                let key = citation.key();
                Ok(ApiResponse::Cited { citation, key })
            }
            ApiRequest::Audit { model } => {
                let mut scratch = None;
                let mref = model.as_model_ref(&mut scratch)?;
                let report = self.lake.audit_model(mref)?;
                Ok(ApiResponse::Audited { report })
            }
            ApiRequest::UpdateCard { model, card } => {
                let mut scratch = None;
                let mref = model.as_model_ref(&mut scratch)?;
                self.lake.update_card(mref, card)?;
                Ok(ApiResponse::CardUpdated)
            }
            ApiRequest::ListModels => Ok(ApiResponse::Models {
                names: self.lake.model_names(),
            }),
            ApiRequest::Sync => {
                self.lake.sync()?;
                Ok(ApiResponse::Synced)
            }
            ApiRequest::Gc => {
                let report = self.lake.gc()?;
                Ok(ApiResponse::GcDone { report })
            }
            ApiRequest::Metrics => Ok(ApiResponse::Metrics {
                snapshot: mlake_obs::snapshot(),
            }),
        }
    }
}

/// Span (and therefore histogram) name for each operation — static
/// strings so the obs registry's `&'static str` fast path applies.
pub fn span_name(req: &ApiRequest) -> &'static str {
    match req {
        ApiRequest::Ingest { .. } => "http.ingest",
        ApiRequest::Similar { .. } => "http.similar",
        ApiRequest::TextSearch { .. } => "http.text_search",
        ApiRequest::HybridSearch { .. } => "http.hybrid_search",
        ApiRequest::Query { .. } => "http.query",
        ApiRequest::Explain { .. } => "http.explain",
        ApiRequest::Resolve { .. } => "http.resolve",
        ApiRequest::Cite { .. } => "http.cite",
        ApiRequest::Audit { .. } => "http.audit",
        ApiRequest::UpdateCard { .. } => "http.update_card",
        ApiRequest::ListModels => "http.list_models",
        ApiRequest::Sync => "http.sync",
        ApiRequest::Gc => "http.gc",
        ApiRequest::Metrics => "http.metrics",
    }
}

/// The body served for protocol-level failures that never reach a lake
/// (unknown route, undecodable payload, shed load): the same
/// [`ApiError`] wire shape, built from a kind + message.
pub fn protocol_error(kind: mlake_core::ErrorKind, status: u16, message: String) -> Vec<u8> {
    mlake_proto::encode_response(&ApiResponse::Error(ApiError {
        kind,
        status,
        message,
    }))
}

/// Convenience for 404s on unroutable paths.
pub fn not_found(what: &str) -> Vec<u8> {
    protocol_error(
        mlake_core::ErrorKind::NotFound,
        status_for(mlake_core::ErrorKind::NotFound),
        format!("no such route or resource: {what}"),
    )
}
