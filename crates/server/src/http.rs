//! Hand-rolled HTTP/1.1 subset (DESIGN.md §14): request parsing with
//! persistent keep-alive connections, `Content-Length` bodies, and
//! response writing. No chunked transfer encoding, no TLS, no
//! pipelining beyond one in-flight request per connection — exactly the
//! subset `mlake-load` and curl speak.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional `?query`).
    pub path: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Decoded body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`, or an HTTP/1.0 client that did not
    /// opt in to keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => false, // HTTP/1.1 default: persistent
        }
    }
}

/// Outcome of one read attempt on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// The read timed out with no (or only partial) data; buffered bytes
    /// are kept, so the caller can poll a shutdown flag and try again.
    TimedOut,
    /// The bytes on the wire are not valid HTTP; the caller should answer
    /// 400 and close.
    Malformed(String),
    /// The declared body exceeds the configured cap; answer 413 and close.
    TooLarge(usize),
}

/// One server side of a keep-alive connection: the stream plus the bytes
/// read past the previous request's end.
pub struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
    max_body: usize,
}

impl HttpConn {
    /// Wraps an accepted stream. `max_body` caps `Content-Length`.
    pub fn new(stream: TcpStream, max_body: usize) -> HttpConn {
        HttpConn {
            stream,
            buf: Vec::new(),
            max_body,
        }
    }

    /// The underlying stream (for timeouts/shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads the next request, honoring the stream's read timeout.
    pub fn read_request(&mut self) -> io::Result<ReadOutcome> {
        // 1. Accumulate until the header terminator.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Ok(ReadOutcome::Malformed("header block too large".into()));
            }
            match self.fill()? {
                FillOutcome::Data => {}
                FillOutcome::Eof if self.buf.is_empty() => return Ok(ReadOutcome::Eof),
                FillOutcome::Eof => {
                    return Ok(ReadOutcome::Malformed("eof mid-headers".into()));
                }
                FillOutcome::TimedOut => return Ok(ReadOutcome::TimedOut),
            }
        };

        // 2. Parse request line + headers.
        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(h) => h,
            Err(_) => return Ok(ReadOutcome::Malformed("non-utf8 head".into())),
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => {
                (m.to_ascii_uppercase(), p.to_string(), v)
            }
            _ => {
                return Ok(ReadOutcome::Malformed(format!(
                    "bad request line: '{request_line}'"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Ok(ReadOutcome::Malformed(format!("bad version: '{version}'")));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Ok(ReadOutcome::Malformed(format!("bad header: '{line}'")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let mut req = Request {
            method,
            path,
            headers,
            body: Vec::new(),
        };
        if req.header("transfer-encoding").is_some() {
            return Ok(ReadOutcome::Malformed(
                "transfer-encoding is not supported; send Content-Length".into(),
            ));
        }
        let content_len = match req.header("content-length") {
            None => 0,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    return Ok(ReadOutcome::Malformed(format!(
                        "bad content-length: '{v}'"
                    )))
                }
            },
        };
        if content_len > self.max_body {
            return Ok(ReadOutcome::TooLarge(content_len));
        }

        // 3. Read the body. The head (including its CRLFCRLF terminator)
        // is consumed from the buffer first; over-read bytes past the
        // body stay buffered for the next request on this connection.
        let body_start = head_end + 4;
        self.buf.drain(..body_start);
        while self.buf.len() < content_len {
            match self.fill()? {
                FillOutcome::Data => {}
                FillOutcome::Eof => {
                    return Ok(ReadOutcome::Malformed("eof mid-body".into()));
                }
                // Mid-request timeouts keep accumulating: the request has
                // started arriving, so the caller must not tear the
                // connection down between reads of one body.
                FillOutcome::TimedOut => {}
            }
        }
        req.body = self.buf.drain(..content_len).collect();
        Ok(ReadOutcome::Request(req))
    }

    fn fill(&mut self) -> io::Result<FillOutcome> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(FillOutcome::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(FillOutcome::Data)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(FillOutcome::TimedOut)
            }
            Err(e) => Err(e),
        }
    }

    /// Writes one response and flushes it.
    pub fn write_response(&mut self, resp: &Response) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            resp.status,
            reason(resp.status),
            resp.body.len()
        );
        for (name, value) in &resp.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if resp.close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(&resp.body)?;
        self.stream.flush()
    }
}

enum FillOutcome {
    Data,
    Eof,
    TimedOut,
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response to write.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (JSON).
    pub body: Vec<u8>,
    /// Extra headers beyond Content-Type/Length/Connection.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Whether to close the connection after writing.
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            body,
            extra_headers: Vec::new(),
            close: false,
        }
    }
}

/// Reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn reason_phrases_cover_emitted_statuses() {
        for s in [200, 400, 404, 405, 409, 413, 500, 503] {
            assert_ne!(reason(s), "Unknown", "{s}");
        }
    }
}
