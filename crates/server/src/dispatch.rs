//! Bounded dispatch queue bridging connection threads onto the
//! `mlake-par` pool (DESIGN.md §14).
//!
//! Connection threads never run lake operations themselves: they enqueue
//! a job and block on its response channel. A single dispatcher thread
//! drains the queue in batches and executes each batch as one
//! `mlake_par::par_scatter` region, so request handling runs on the same
//! work-stealing pool as every other parallel region in the workspace —
//! one global compute budget, no second thread pool.
//!
//! Backpressure is the queue bound: [`Dispatcher::try_submit`] refuses
//! instead of blocking when `capacity` jobs are already waiting, and the
//! server turns that refusal into `503 Service Unavailable` +
//! `Retry-After`. Because HTTP/1.1 allows one in-flight request per
//! connection, total queued work is additionally bounded by the number
//! of live connections.
//!
//! Lock ranks (DESIGN.md §10): the queue mutex is `server.queue`
//! (rank 5) and each job's hand-off slot is `server.job` (rank 6); both
//! sit below `par.queue` (10) because a dispatcher batch enters a pool
//! region — which takes the pool's own locks — only after every
//! dispatcher-side lock is released.

use mlake_par::lockorder::{self, ranks};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One queued unit of work.
pub type Job = Box<dyn FnOnce() + Send>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

/// The bounded queue plus its dispatcher thread.
pub struct Dispatcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Dispatcher {
    /// Starts a dispatcher with room for `capacity` queued jobs
    /// (minimum 1). Fails only if the dispatcher thread cannot spawn —
    /// a dispatcher with no thread would strand every submitted job.
    pub fn new(capacity: usize) -> std::io::Result<Dispatcher> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("mlake-dispatch".into())
            .spawn(move || run_dispatcher(&worker_shared))?;
        Ok(Dispatcher {
            shared,
            worker: Some(worker),
        })
    }

    /// Enqueues `job`, or hands it back when the queue is full or the
    /// dispatcher is shutting down — the caller sheds load (503).
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        self.handle().try_submit(job)
    }

    /// A lightweight submit-only handle for connection threads; the
    /// dispatcher thread itself stays owned (and joined) by whoever owns
    /// the `Dispatcher`.
    pub fn handle(&self) -> DispatchHandle {
        DispatchHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the dispatcher: every already-accepted job still runs (an
    /// enqueued write may already be acknowledged-in-progress; it must
    /// not be dropped), then the thread exits.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Submit-only view of the queue; see [`Dispatcher::handle`].
#[derive(Clone)]
pub struct DispatchHandle {
    shared: Arc<Shared>,
}

impl DispatchHandle {
    /// Enqueues `job`, or hands it back when the queue is full or the
    /// dispatcher is shutting down — the caller sheds load (503).
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(job);
        }
        let depth = {
            // lock-order: 5 (server.queue)
            let _ord = lockorder::acquire(ranks::SERVER_QUEUE, "server.queue");
            let mut queue = self.shared.queue.lock();
            if queue.len() >= self.shared.capacity {
                drop(queue);
                mlake_obs::registry().counter("http.queue.shed").inc();
                return Err(job);
            }
            queue.push_back(job);
            queue.len()
        };
        mlake_obs::registry().gauge("http.queue.depth").set(depth as i64);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn run_dispatcher(shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            // lock-order: 5 (server.queue)
            let _ord = lockorder::acquire(ranks::SERVER_QUEUE, "server.queue");
            let mut queue = shared.queue.lock();
            while queue.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
                shared.available.wait(&mut queue);
            }
            if queue.is_empty() {
                return; // shutdown with nothing left to drain
            }
            queue.drain(..).collect()
        };
        mlake_obs::registry().gauge("http.queue.depth").set(0);
        mlake_obs::registry()
            .histogram_dyn("http.batch.size")
            .record(batch.len() as u64);
        if batch.len() == 1 {
            // A pool region for one job is pure overhead.
            for job in batch {
                job();
            }
        } else {
            // FnOnce jobs cross into the `Fn(&T)` pool region through a
            // take-once slot per job.
            let slots: Vec<Mutex<Option<Job>>> =
                batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
            mlake_par::par_scatter(slots.len(), |i| {
                // Uncontended take-once slot, released before the job
                // (and any pool locks) runs.
                let _ord = lockorder::acquire(ranks::SERVER_JOB, "server.job");
                // lock-order: 6 (server.job)
                let job = slots[i].lock().take();
                drop(_ord);
                if let Some(job) = job {
                    job();
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs_and_sheds_past_capacity() {
        let hits = Arc::new(AtomicUsize::new(0));
        let d = Dispatcher::new(64).unwrap();
        let (tx, rx) = mpsc::channel();
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            d.try_submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            }))
            .unwrap_or_else(|_| panic!("queue unexpectedly full"));
        }
        for _ in 0..32 {
            rx.recv().expect("job ran");
        }
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        d.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let d = Dispatcher::new(1024).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..256 {
            let done = Arc::clone(&done);
            let _ = d.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        d.shutdown(); // must not lose any accepted job
        assert_eq!(done.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let d = Dispatcher::new(4).unwrap();
        d.shared.shutdown.store(true, Ordering::Release);
        assert!(d.try_submit(Box::new(|| {})).is_err());
    }
}
