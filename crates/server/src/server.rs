//! The server proper: accept loop, connection threads, route table, and
//! the graceful-shutdown sequence (DESIGN.md §14).
//!
//! Threading model: one OS thread per connection parses HTTP and writes
//! responses; the lake work itself is enqueued on the bounded
//! [`Dispatcher`] and executed on the `mlake-par` pool. A connection
//! thread therefore blocks twice per request — once reading the socket,
//! once waiting for its job's response channel — and never computes.
//!
//! Shutdown: [`Server::shutdown`] (1) sets the shutdown flag, (2) wakes
//! the blocking `accept` with a loopback connect, (3) joins the acceptor,
//! (4) joins every connection thread — each finishes its in-flight
//! request first, so every acknowledged response is fully written —
//! (5) stops the dispatcher, which drains all accepted jobs, and
//! (6) syncs + quiesces every routed lake. An `Ok` response to a write
//! therefore implies the write survives the shutdown (and, with
//! `SyncPolicy::Always`, a crash).

use crate::api::{not_found, protocol_error, Api};
use crate::dispatch::{DispatchHandle, Dispatcher, Job};
use crate::http::{HttpConn, ReadOutcome, Request, Response};
use crate::router::LakeRouter;
use mlake_core::ErrorKind;
use mlake_fingerprint::FingerprintKind;
use mlake_par::lockorder::{self, ranks};
use mlake_proto::{decode_request, encode_response, ApiRequest, WireRef};
use serde::{Content, Deserialize};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Dispatch queue bound; a full queue sheds with 503 + `Retry-After`.
    pub queue_capacity: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Socket read timeout — the granularity at which idle keep-alive
    /// connections notice shutdown.
    pub read_timeout: Duration,
    /// `Retry-After` seconds advertised on shed requests.
    pub retry_after_s: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 128,
            max_body: 16 * 1024 * 1024,
            read_timeout: Duration::from_millis(50),
            retry_after_s: 1,
        }
    }
}

/// A running server. Dropping it without [`Server::shutdown`] aborts
/// accept/connection threads un-gracefully; call `shutdown` for the
/// ordered sequence.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    dispatcher: Option<Dispatcher>,
    router: Arc<LakeRouter>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `router`.
    pub fn bind(router: Arc<LakeRouter>, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let dispatcher = Dispatcher::new(config.queue_capacity)?;
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let ctx = Arc::new(ConnCtx {
            router: Arc::clone(&router),
            dispatch: dispatcher.handle(),
            shutdown: Arc::clone(&shutdown),
            config: config.clone(),
        });
        let accept_conns = Arc::clone(&conns);
        let accept_flag = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("mlake-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    mlake_obs::registry().counter("http.conns").inc();
                    mlake_obs::registry().gauge("http.conns.live").add(1);
                    let ctx = Arc::clone(&ctx);
                    let spawned = std::thread::Builder::new()
                        .name("mlake-conn".into())
                        .spawn(move || {
                            serve_connection(stream, &ctx);
                            mlake_obs::registry().gauge("http.conns.live").add(-1);
                        });
                    match spawned {
                        Ok(handle) => {
                            let _ord = lockorder::acquire(
                                ranks::SERVER_CONNS,
                                "server.conns",
                            );
                            // lock-order: 7 (server.conns)
                            accept_conns
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(handle);
                        }
                        // Thread exhaustion: drop the stream (the client
                        // sees a reset and retries) instead of crashing
                        // the acceptor.
                        Err(_) => {
                            mlake_obs::registry().counter("http.conns.spawn_failed").inc();
                            mlake_obs::registry().gauge("http.conns.live").add(-1);
                        }
                    }
                }
            })?;

        Ok(Server {
            addr: local,
            shutdown,
            acceptor: Some(acceptor),
            conns,
            dispatcher: Some(dispatcher),
            router,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown; see the module docs for the ordered sequence.
    /// Returns the first lake sync error, after the sequence completes.
    pub fn shutdown(mut self) -> Result<(), mlake_core::LakeError> {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns = {
            let _ord = lockorder::acquire(ranks::SERVER_CONNS, "server.conns");
            // lock-order: 7 (server.conns)
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()))
        };
        for conn in conns {
            let _ = conn.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            dispatcher.shutdown();
        }
        self.router.sync_all()
    }
}

struct ConnCtx {
    router: Arc<LakeRouter>,
    dispatch: DispatchHandle,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

fn serve_connection(stream: TcpStream, ctx: &ConnCtx) {
    let _ = stream.set_read_timeout(Some(ctx.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut conn = HttpConn::new(stream, ctx.config.max_body);
    loop {
        if ctx.shutdown.load(Ordering::Acquire) {
            return;
        }
        let outcome = match conn.read_request() {
            Ok(o) => o,
            Err(_) => return,
        };
        let resp = match outcome {
            ReadOutcome::TimedOut => continue,
            ReadOutcome::Eof => return,
            ReadOutcome::Malformed(msg) => Response {
                status: 400,
                body: protocol_error(ErrorKind::InvalidInput, 400, msg),
                extra_headers: Vec::new(),
                close: true,
            },
            ReadOutcome::TooLarge(n) => Response {
                status: 413,
                body: protocol_error(
                    ErrorKind::InvalidInput,
                    413,
                    format!("body of {n} bytes exceeds the cap"),
                ),
                extra_headers: Vec::new(),
                close: true,
            },
            ReadOutcome::Request(req) => {
                let close = req.wants_close();
                let mut resp = handle_request(req, ctx);
                resp.close = resp.close || close;
                resp
            }
        };
        let close = resp.close;
        if conn.write_response(&resp).is_err() || close {
            return;
        }
    }
}

/// Routes one request. Protocol-level work (routing, decode) runs on the
/// connection thread; anything touching a lake is dispatched to the pool
/// and awaited on a response channel.
fn handle_request(req: Request, ctx: &ConnCtx) -> Response {
    let (lake_name, api_req) = match route(&req) {
        Ok(Routed::Api { lake, request }) => (lake, request),
        Ok(Routed::Health) => {
            return Response::json(200, b"{\"ok\":true}".to_vec());
        }
        Ok(Routed::Lakes) => {
            let names = ctx.router.names();
            let body = serde_json::to_vec(&names).unwrap_or_default();
            return Response::json(200, body);
        }
        Ok(Routed::Metrics) => {
            let body = serde_json::to_vec(&mlake_obs::snapshot()).unwrap_or_default();
            return Response::json(200, body);
        }
        Err(resp) => return resp,
    };
    let Some(lake) = ctx.router.get(&lake_name) else {
        return Response::json(404, not_found(&format!("lake '{lake_name}'")));
    };

    let api = Api::new(lake);
    let (tx, rx) = mpsc::channel::<(u16, Vec<u8>)>();
    let job: Job = Box::new(move || {
        let (status, resp) = api.handle(*api_req);
        let _ = tx.send((status, encode_response(&resp)));
    });
    match ctx.dispatch.try_submit(job) {
        Ok(()) => match rx.recv() {
            Ok((status, body)) => Response::json(status, body),
            // The dispatcher dropped the job without running it — only
            // possible on teardown races; nothing was acknowledged.
            Err(_) => Response {
                status: 503,
                body: protocol_error(
                    ErrorKind::Unavailable,
                    503,
                    "server shutting down".into(),
                ),
                extra_headers: vec![("Retry-After", ctx.config.retry_after_s.to_string())],
                close: true,
            },
        },
        Err(_refused) => Response {
            status: 503,
            body: protocol_error(
                ErrorKind::Unavailable,
                503,
                "dispatch queue full; retry".into(),
            ),
            extra_headers: vec![("Retry-After", ctx.config.retry_after_s.to_string())],
            close: false,
        },
    }
}

enum Routed {
    Health,
    Lakes,
    Metrics,
    // Boxed: an Ingest request carries a whole model artifact, which
    // would otherwise dominate the enum's stack size.
    Api { lake: String, request: Box<ApiRequest> },
}

/// The route table (DESIGN.md §14). REST-shaped routes are thin sugar
/// over the typed protocol: bodies parse into the matching [`ApiRequest`]
/// variant, so the wire protocol has exactly one source of truth.
fn route(req: &Request) -> Result<Routed, Response> {
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();
    match segs.as_slice() {
        ["v1", "health"] if method == "GET" => Ok(Routed::Health),
        ["v1", "metrics"] if method == "GET" => Ok(Routed::Metrics),
        ["v1", "lakes"] if method == "GET" => Ok(Routed::Lakes),
        ["v1", "lakes", lake, rest @ ..] => {
            let request = route_lake(method, rest, query, &req.body)?;
            Ok(Routed::Api {
                lake: (*lake).to_string(),
                request: Box::new(request),
            })
        }
        _ => Err(Response::json(404, not_found(path))),
    }
}

fn route_lake(
    method: &str,
    rest: &[&str],
    query: &str,
    body: &[u8],
) -> Result<ApiRequest, Response> {
    match (method, rest) {
        // The typed endpoint: the body IS an ApiRequest.
        ("POST", ["api"]) => decode_request(body).map_err(|e| bad_request(e.to_string())),
        ("GET", ["models"]) => Ok(ApiRequest::ListModels),
        ("POST", ["models"]) => wrap_body("Ingest", body),
        ("GET", ["models", r]) => Ok(ApiRequest::Resolve { model: parse_ref(r) }),
        ("GET", ["models", r, "cite"]) => Ok(ApiRequest::Cite { model: parse_ref(r) }),
        ("GET", ["models", r, "audit"]) => Ok(ApiRequest::Audit { model: parse_ref(r) }),
        ("GET", ["models", r, "similar"]) => {
            let (kind, k) = parse_similar_query(query)?;
            Ok(ApiRequest::Similar {
                model: parse_ref(r),
                kind,
                k,
            })
        }
        ("PUT" | "POST", ["models", r, "card"]) => {
            let card = serde_json::from_slice(body)
                .map_err(|e| bad_request(format!("card decode: {e}")))?;
            Ok(ApiRequest::UpdateCard {
                model: parse_ref(r),
                card,
            })
        }
        // REST sugar for retrieval: the body carries the TextSearch /
        // HybridSearch fields (`{"query": "...", "k": 10, ...}`).
        ("POST", ["search"]) => wrap_body("TextSearch", body),
        ("POST", ["search", "hybrid"]) => wrap_body("HybridSearch", body),
        ("POST", ["query"]) => wrap_body("Query", body),
        ("POST", ["explain"]) => wrap_body("Explain", body),
        ("POST", ["sync"]) => Ok(ApiRequest::Sync),
        ("POST", ["gc"]) => Ok(ApiRequest::Gc),
        ("GET", ["metrics"]) => Ok(ApiRequest::Metrics),
        _ => Err(Response::json(
            404,
            not_found(&format!("{method} /v1/lakes/{{lake}}/{}", rest.join("/"))),
        )),
    }
}

/// Wraps a JSON body as the payload of enum variant `variant` and decodes
/// the result as an [`ApiRequest`] — REST bodies reuse the typed
/// protocol's field definitions instead of duplicating them.
fn wrap_body(variant: &str, body: &[u8]) -> Result<ApiRequest, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| bad_request("body must be utf-8 JSON".into()))?;
    let content =
        serde_json::parse(text).map_err(|e| bad_request(format!("body parse: {e}")))?;
    let wrapped = Content::Map(vec![(variant.to_string(), content)]);
    ApiRequest::from_content(&wrapped).map_err(|e| bad_request(format!("{variant} decode: {e}")))
}

/// `{ref}` path segments: all digits → id, 64 hex chars → digest,
/// anything else → name. Numeric or 64-hex *names* must be addressed via
/// the typed `/api` endpoint, where `WireRef` is explicit.
fn parse_ref(s: &str) -> WireRef {
    if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(id) = s.parse() {
            return WireRef::Id(id);
        }
    }
    if s.len() == 64 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return WireRef::Digest(s.to_ascii_lowercase());
    }
    WireRef::Name(s.to_string())
}

fn parse_similar_query(query: &str) -> Result<(FingerprintKind, usize), Response> {
    let mut kind = FingerprintKind::Hybrid;
    let mut k = 10usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("kind", v)) => {
                kind = match v {
                    "intrinsic" => FingerprintKind::Intrinsic,
                    "extrinsic" => FingerprintKind::Extrinsic,
                    "hybrid" => FingerprintKind::Hybrid,
                    other => {
                        return Err(bad_request(format!(
                            "unknown fingerprint kind '{other}' \
                             (intrinsic|extrinsic|hybrid)"
                        )))
                    }
                }
            }
            Some(("k", v)) => {
                k = v
                    .parse()
                    .map_err(|_| bad_request(format!("bad k '{v}'")))?;
            }
            _ => return Err(bad_request(format!("bad query pair '{pair}'"))),
        }
    }
    Ok((kind, k))
}

fn bad_request(msg: String) -> Response {
    Response::json(400, protocol_error(ErrorKind::InvalidInput, 400, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn ref_segments_parse_by_shape() {
        assert_eq!(parse_ref("17"), WireRef::Id(17));
        assert_eq!(parse_ref("base-legal"), WireRef::Name("base-legal".into()));
        let hex = "AB".repeat(32);
        assert_eq!(parse_ref(&hex), WireRef::Digest("ab".repeat(32)));
    }

    #[test]
    fn routes_map_to_typed_requests() {
        let r = route(&get("/v1/lakes/main/models/3/similar?kind=intrinsic&k=4")).unwrap();
        match r {
            Routed::Api { lake, request } => {
                assert_eq!(lake, "main");
                assert_eq!(
                    *request,
                    ApiRequest::Similar {
                        model: WireRef::Id(3),
                        kind: FingerprintKind::Intrinsic,
                        k: 4
                    }
                );
            }
            _ => panic!("expected api route"),
        }
        assert!(matches!(route(&get("/v1/health")).unwrap(), Routed::Health));
        assert!(route(&get("/nope")).is_err());
    }

    #[test]
    fn rest_bodies_reuse_the_typed_protocol() {
        let req = Request {
            method: "POST".into(),
            path: "/v1/lakes/main/query".into(),
            headers: Vec::new(),
            body: b"{\"mlql\": \"FIND MODELS\"}".to_vec(),
        };
        match route(&req).unwrap() {
            Routed::Api { request, .. } => {
                assert_eq!(*request, ApiRequest::Query { mlql: "FIND MODELS".into() });
            }
            _ => panic!("expected api route"),
        }
    }

    #[test]
    fn search_routes_wrap_bodies() {
        // The exact body shapes the README's search quickstart documents.
        let post = |path: &str, body: &[u8]| Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.to_vec(),
        };
        let req = post("/v1/lakes/main/search", b"{\"query\": \"legal summarization\", \"k\": 10}");
        match route(&req).unwrap() {
            Routed::Api { request, .. } => assert_eq!(
                *request,
                ApiRequest::TextSearch { query: "legal summarization".into(), k: 10 }
            ),
            _ => panic!("expected api route"),
        }
        let req = post(
            "/v1/lakes/main/search/hybrid",
            b"{\"query\": \"legal summarization\", \"model\": {\"Id\": 3}, \
               \"kind\": \"Hybrid\", \"k\": 10}",
        );
        match route(&req).unwrap() {
            Routed::Api { request, .. } => assert_eq!(
                *request,
                ApiRequest::HybridSearch {
                    query: "legal summarization".into(),
                    model: WireRef::Id(3),
                    kind: FingerprintKind::Hybrid,
                    k: 10
                }
            ),
            _ => panic!("expected api route"),
        }
    }
}
