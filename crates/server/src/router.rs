//! Multi-tenant lake routing: `/v1/lakes/{lake}/...` → one
//! [`ModelLake`] per tenant name, registered in-process or opened from
//! disk via [`ModelLake::open`] (snapshot load + WAL replay).

use mlake_core::{LakeConfig, LakeError, ModelLake};
use mlake_par::lockorder::{self, ranks};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Name → lake map shared by every connection thread.
#[derive(Default)]
pub struct LakeRouter {
    lakes: RwLock<HashMap<String, Arc<ModelLake>>>,
}

impl LakeRouter {
    /// An empty router.
    pub fn new() -> LakeRouter {
        LakeRouter::default()
    }

    /// Registers an in-process lake under `name`, returning its handle.
    /// Re-registering a name replaces the previous lake.
    pub fn register(&self, name: impl Into<String>, lake: ModelLake) -> Arc<ModelLake> {
        let lake = Arc::new(lake);
        // lock-order: 4 (server.router)
        let _ord = lockorder::acquire(ranks::SERVER_ROUTER, "server.router");
        self.lakes.write().insert(name.into(), Arc::clone(&lake));
        lake
    }

    /// Opens a durable lake from `dir` (snapshot + WAL replay through
    /// [`ModelLake::open`]) and registers it under `name`.
    pub fn open(
        &self,
        name: impl Into<String>,
        dir: &Path,
        config: LakeConfig,
    ) -> Result<Arc<ModelLake>, LakeError> {
        let lake = ModelLake::open(dir, config)?;
        Ok(self.register(name, lake))
    }

    /// The lake serving `name`, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<ModelLake>> {
        // lock-order: 4 (server.router)
        let _ord = lockorder::acquire(ranks::SERVER_ROUTER, "server.router");
        self.lakes.read().get(name).cloned()
    }

    /// Registered tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        // lock-order: 4 (server.router)
        let _ord = lockorder::acquire(ranks::SERVER_ROUTER, "server.router");
        let mut names: Vec<String> = self.lakes.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Flushes and quiesces every registered lake: group-commit-buffered
    /// WAL records reach stable storage and background compactions
    /// finish. The graceful-shutdown tail (DESIGN.md §14).
    pub fn sync_all(&self) -> Result<(), LakeError> {
        let lakes: Vec<Arc<ModelLake>> = {
            // lock-order: 4 (server.router)
            let _ord = lockorder::acquire(ranks::SERVER_ROUTER, "server.router");
            self.lakes.read().values().cloned().collect()
        };
        for lake in lakes {
            lake.sync()?;
            lake.quiesce();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_and_names() {
        let router = LakeRouter::new();
        assert!(router.get("main").is_none());
        router.register("main", ModelLake::new(LakeConfig::default()));
        router.register("alt", ModelLake::new(LakeConfig::default()));
        assert!(router.get("main").is_some());
        assert_eq!(router.names(), vec!["alt".to_string(), "main".to_string()]);
        router.sync_all().expect("ephemeral lakes sync trivially");
    }
}
