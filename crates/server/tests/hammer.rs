//! End-to-end HTTP hammer (DESIGN.md §14): a durable lake served over
//! real TCP under concurrent mixed load, deliberate backpressure, and a
//! graceful shutdown whose acknowledged writes must all survive a
//! reopen + WAL replay.
//!
//! This is deliberately the only test in this binary: the final
//! assertions read the process-global observability registry, which
//! Rust's threaded test harness would otherwise share between unrelated
//! tests.

use mlake_core::lake::{LakeConfig, ModelLake};
use mlake_core::ModelRef;
use mlake_load::HttpClient;
use mlake_nn::{Activation, Mlp, Model};
use mlake_proto::{encode_request, ApiRequest, ApiResponse};
use mlake_server::{LakeRouter, Server, ServerConfig};
use mlake_tensor::{init::Init, Pcg64};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const CLIENTS: usize = 4;
const OPS_PER_CLIENT: usize = 24;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mlake-hammer-{tag}-{}", std::process::id()))
}

fn model(seed: u64) -> Model {
    let mut rng = Pcg64::new(seed);
    Model::Mlp(Mlp::new(vec![8, 4, 3], Activation::Relu, Init::HeNormal, &mut rng).unwrap())
}

fn lake_config() -> LakeConfig {
    // SyncPolicy::Always: a 2xx ack means the WAL record hit stable
    // storage, which is exactly what the post-shutdown reopen checks.
    LakeConfig::builder()
        .name("hammer")
        .wal_sync(mlake_wal::SyncPolicy::Always)
        .build()
        .unwrap()
}

fn ingest_body(name: &str, seed: u64) -> Vec<u8> {
    encode_request(&ApiRequest::Ingest {
        name: name.to_string(),
        model: model(seed),
        card: None,
    })
}

#[test]
fn hammer_backpressure_and_graceful_shutdown() {
    let dir = tmp("e2e");
    let _ = std::fs::remove_dir_all(&dir);
    mlake_obs::registry().reset();

    // ---- Serve a durable lake --------------------------------------
    let router = Arc::new(LakeRouter::new());
    {
        let lake = ModelLake::create(&dir, lake_config()).unwrap();
        // Seed one model serially so reads always have a target.
        lake.ingest_model("seed-model", &model(0), None).unwrap();
        router.register("main", lake);
    }
    let server = Server::bind(
        Arc::clone(&router),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    // ---- Phase A: concurrent mixed read/write load ------------------
    // Each client thread drives its own keep-alive connection through
    // ingest / similar / MLQL / resolve / list / update-card. Every
    // response must be 200 (capacity 128 never sheds 4 clients), and
    // every acked ingest is recorded for the durability check.
    let acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let acked = Arc::clone(&acked);
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..OPS_PER_CLIENT {
                    let (what, resp) = match i % 6 {
                        0 => {
                            let name = format!("m-c{c}-i{i}");
                            let resp = client
                                .post(
                                    "/v1/lakes/main/api",
                                    &ingest_body(&name, (c * 1000 + i) as u64),
                                )
                                .unwrap();
                            if resp.status == 200 {
                                acked.lock().unwrap().push(name);
                            }
                            ("ingest", resp)
                        }
                        1 => (
                            "similar",
                            client
                                .get("/v1/lakes/main/models/seed-model/similar?kind=hybrid&k=3")
                                .unwrap(),
                        ),
                        2 => (
                            "query",
                            client
                                .post(
                                    "/v1/lakes/main/query",
                                    b"{\"mlql\": \"FIND MODELS WHERE params > 0\"}",
                                )
                                .unwrap(),
                        ),
                        3 => (
                            "resolve",
                            client.get("/v1/lakes/main/models/seed-model").unwrap(),
                        ),
                        4 => ("list", client.get("/v1/lakes/main/models").unwrap()),
                        _ => {
                            let mut card =
                                mlake_proto::WireModelCard::skeleton("seed-model", "mlp");
                            card.notes = format!("hammer c{c} i{i}");
                            let body = encode_request(&ApiRequest::UpdateCard {
                                model: mlake_proto::WireRef::Name("seed-model".into()),
                                card,
                            });
                            (
                                "update-card",
                                client.post("/v1/lakes/main/api", &body).unwrap(),
                            )
                        }
                    };
                    assert_eq!(
                        resp.status,
                        200,
                        "{what} (client {c}, op {i}) failed: {}",
                        String::from_utf8_lossy(&resp.body)
                    );
                }
            });
        }
    });
    let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();
    assert_eq!(acked.len(), CLIENTS * OPS_PER_CLIENT.div_ceil(6));

    // Typed protocol sanity over the same wire: list everything back.
    {
        let mut client = HttpClient::connect(addr).unwrap();
        let resp = client.get("/v1/lakes/main/models").unwrap();
        assert_eq!(resp.status, 200);
        match mlake_proto::decode_response(&resp.body).unwrap() {
            ApiResponse::Models { names } => {
                for name in &acked {
                    assert!(names.contains(name), "acked ingest '{name}' not listed");
                }
            }
            other => panic!("expected Models, got {other:?}"),
        }
        // Health and metrics endpoints answer inline (never queued).
        assert_eq!(client.get("/v1/health").unwrap().status, 200);
        assert_eq!(client.get("/v1/lakes/main/metrics").unwrap().status, 200);
        // Unknown lake and unknown route are clean 404s, not 5xx.
        assert_eq!(client.get("/v1/lakes/nope/models").unwrap().status, 404);
        assert_eq!(client.get("/v1/bogus").unwrap().status, 404);
    }

    // ---- Phase B: deliberate backpressure ---------------------------
    // A second server over the same router with a queue bound of 1: six
    // clients hammering write ops must trip the bound. Shed responses
    // are 503 + Retry-After and the connection stays usable.
    let tiny = Server::bind(
        Arc::clone(&router),
        "127.0.0.1:0",
        ServerConfig {
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let tiny_addr = tiny.addr();
    let sheds = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..6 {
            let sheds = &sheds;
            scope.spawn(move || {
                let mut client = HttpClient::connect(tiny_addr).unwrap();
                for i in 0..40 {
                    if sheds.load(Ordering::Relaxed) > 0 && i > 8 {
                        break; // backpressure demonstrated; stop early
                    }
                    let name = format!("bp-c{c}-i{i}");
                    let resp = client
                        .post(
                            "/v1/lakes/main/api",
                            &ingest_body(&name, (90_000 + c * 100 + i) as u64),
                        )
                        .unwrap();
                    match resp.status {
                        200 => {}
                        503 => {
                            assert!(
                                resp.header("retry-after").is_some(),
                                "503 without Retry-After"
                            );
                            sheds.fetch_add(1, Ordering::Relaxed);
                            // The shed connection keeps working.
                            let again = client.get("/v1/health").unwrap();
                            assert_eq!(again.status, 200);
                        }
                        other => panic!("unexpected status {other} under backpressure"),
                    }
                }
            });
        }
    });
    assert!(
        sheds.load(Ordering::Relaxed) > 0,
        "queue_capacity=1 under 6 writers never shed — backpressure broken"
    );
    tiny.shutdown().unwrap();

    // ---- Phase C: graceful shutdown under fire ----------------------
    // Clients keep issuing writes while the main server shuts down;
    // whatever they saw acked must survive. Transport errors and 503s
    // after the shutdown flag flips are expected and fine.
    let late_acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let late_acked = Arc::clone(&late_acked);
            scope.spawn(move || {
                let mut client = match HttpClient::connect(addr) {
                    Ok(cl) => cl,
                    Err(_) => return, // accept already closed
                };
                for i in 0..OPS_PER_CLIENT {
                    let name = format!("late-c{c}-i{i}");
                    match client.post(
                        "/v1/lakes/main/api",
                        &ingest_body(&name, (50_000 + c * 1000 + i) as u64),
                    ) {
                        Ok(resp) if resp.status == 200 => {
                            late_acked.lock().unwrap().push(name);
                        }
                        Ok(_) => {}    // shed or refused mid-shutdown
                        Err(_) => break, // connection torn down
                    }
                }
            });
        }
        // Shut down concurrently with the writers above.
        scope.spawn(move || server.shutdown().unwrap());
    });

    let late_acked = Arc::try_unwrap(late_acked).unwrap().into_inner().unwrap();

    // ---- Reopen: every acked write is there, event log is gap-free --
    drop(router);
    let reopened = ModelLake::open(&dir, lake_config()).unwrap();
    for name in acked.iter().chain(late_acked.iter()) {
        reopened
            .resolve(ModelRef::Name(name.as_str()))
            .unwrap_or_else(|e| panic!("acked ingest '{name}' lost across shutdown: {e}"));
    }
    let events = reopened.events();
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64 + 1, "event seq gap at position {i}");
    }

    // Served-path spans landed in the obs histograms (skipped on the
    // MLAKE_OBS=off CI leg).
    if mlake_obs::enabled() {
        let snap = mlake_obs::registry().snapshot();
        let count = |name: &str| snap.histogram(name).map(|h| h.count).unwrap_or(0);
        assert!(count("http.ingest") >= acked.len() as u64);
        assert!(count("http.similar") > 0);
        assert!(count("http.query") > 0);
        assert!(count("http.resolve") > 0);
        assert!(snap.counter("http.queue.shed") > 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
