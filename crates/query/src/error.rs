//! MLQL error type.

use std::fmt;

/// Errors from parsing or executing an MLQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte position in the input.
        position: usize,
        /// Description.
        message: String,
    },
    /// Parse error with the offending token.
    Parse {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// A referenced entity does not exist in the lake.
    UnknownEntity {
        /// Entity kind ("model", "dataset", "benchmark", "field").
        kind: &'static str,
        /// The name used.
        name: String,
    },
    /// Execution failed downstream (index/benchmark error).
    Execution(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse { expected, found } => {
                write!(f, "parse error: expected {expected}, found {found}")
            }
            QueryError::UnknownEntity { kind, name } => {
                write!(f, "unknown {kind}: '{name}'")
            }
            QueryError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QueryError::Parse {
            expected: "LIMIT".into(),
            found: "'legal'".into(),
        };
        assert!(e.to_string().contains("expected LIMIT"));
        assert!(QueryError::UnknownEntity { kind: "model", name: "x".into() }
            .to_string()
            .contains("unknown model"));
        assert!(QueryError::Lex { position: 3, message: "bad char".into() }
            .to_string()
            .contains("byte 3"));
        assert!(QueryError::Execution("boom".into()).to_string().contains("boom"));
    }
}
