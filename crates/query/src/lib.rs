//! # mlake-query
//!
//! **MLQL** — a declarative query language for model lakes, realising §6's
//! vision: "we aim for users to be able to write declarative queries and
//! retrieve a set of models ranked by their suitability for the specified
//! task. Query examples include 'Find all models trained on this corpus of
//! US Supreme Court cases' or 'Find models that outperform Model X on
//! Benchmark Y'."
//!
//! ```text
//! FIND MODELS
//!   WHERE domain = 'legal' AND arch LIKE 'mlp%' AND depth <= 2
//!   SIMILAR TO MODEL 'legal-mlp16-base-f0' USING hybrid
//!   TRAINED ON DATASET 'legal-tab-f0-v1' INCLUDING VERSIONS
//!   OUTPERFORM MODEL 'news-mlp24-base-f1' ON BENCHMARK 'legal-holdout'
//!   ORDER BY score('legal-holdout') DESC
//!   LIMIT 10
//!
//! COUNT MODELS WHERE transform = 'lora'
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`exec`] (planner +
//! executor over the [`exec::QueryTarget`] abstraction, implemented by
//! `mlake-core`'s `ModelLake`).

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{CmpOp, Expr, Literal, OrderBy, OrderKey, Query};
pub use error::QueryError;
pub use exec::{execute, explain, FieldValue, QueryHit, QueryTarget};
pub use parser::parse;
