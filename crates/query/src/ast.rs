//! MLQL abstract syntax tree.

use serde::{Deserialize, Serialize};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// SQL-style `LIKE` with `%` wildcards.
    Like,
}

/// Literal values in predicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
}

/// A boolean filter expression over model fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// `field op literal` — `field` is lower-cased; `score('bench')` becomes
    /// the field `score:bench`.
    Cmp {
        /// Field name (lower case).
        field: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Ranking keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OrderKey {
    /// Benchmark score `score('bench')`.
    Score(String),
    /// Similarity to the `SIMILAR TO` query model.
    Similarity,
    /// Model name (deterministic tiebreak ordering).
    Name,
}

/// ORDER BY clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    /// Key.
    pub key: OrderKey,
    /// Descending?
    pub desc: bool,
}

/// `SIMILAR TO MODEL '…' USING …`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarClause {
    /// Query model name.
    pub model: String,
    /// Fingerprint kind name ("weights" | "behavior" | "hybrid").
    pub using: String,
    /// Candidate pool size requested from the index.
    pub k: usize,
}

/// `MATCHES '…' [TOP n]` — full-text (BM25) predicate over card text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchClause {
    /// Free-text query, tokenized by the target's text index.
    pub query: String,
    /// Candidate pool size requested from the text index.
    pub k: usize,
}

/// `TRAINED ON DATASET '…' [INCLUDING VERSIONS]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedOnClause {
    /// Dataset name.
    pub dataset: String,
    /// Whether derived dataset versions count.
    pub include_versions: bool,
}

/// `OUTPERFORM MODEL '…' ON BENCHMARK '…'`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutperformClause {
    /// Reference model.
    pub model: String,
    /// Benchmark name.
    pub benchmark: String,
}

/// A full MLQL query.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Query {
    /// `COUNT MODELS …` instead of `FIND MODELS …`: the caller wants the
    /// cardinality of the answer set, not the rows.
    #[serde(default)]
    pub count_only: bool,
    /// WHERE filter.
    pub filter: Option<Expr>,
    /// SIMILAR TO clause.
    pub similar: Option<SimilarClause>,
    /// MATCHES clause (absent in pre-§16 serialized queries).
    #[serde(default)]
    pub matches: Option<MatchClause>,
    /// TRAINED ON clause.
    pub trained_on: Option<TrainedOnClause>,
    /// OUTPERFORM clause.
    pub outperform: Option<OutperformClause>,
    /// ORDER BY clause.
    pub order_by: Option<OrderBy>,
    /// LIMIT clause.
    pub limit: Option<usize>,
}

/// SQL-LIKE pattern match with `%` wildcards (case-insensitive).
pub fn like_match(pattern: &str, value: &str) -> bool {
    fn rec(p: &[u8], v: &[u8]) -> bool {
        match (p.first(), v.first()) {
            (None, None) => true,
            (Some(b'%'), _) => {
                // `%` matches any run (including empty).
                rec(&p[1..], v) || (!v.is_empty() && rec(p, &v[1..]))
            }
            (Some(&pc), Some(&vc)) if pc.eq_ignore_ascii_case(&vc) => rec(&p[1..], &v[1..]),
            _ => false,
        }
    }
    rec(pattern.as_bytes(), value.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_semantics() {
        assert!(like_match("legal%", "legal-mlp16-base-f0"));
        assert!(like_match("%base%", "legal-mlp16-base-f0"));
        assert!(like_match("%f0", "legal-mlp16-base-f0"));
        assert!(like_match("legal-mlp16-base-f0", "legal-mlp16-base-f0"));
        assert!(!like_match("medical%", "legal-x"));
        assert!(like_match("%", ""));
        assert!(!like_match("", "x"));
        assert!(like_match("LEGAL%", "legal-x"));
    }

    #[test]
    fn default_query_is_empty() {
        let q = Query::default();
        assert!(q.filter.is_none() && q.limit.is_none());
    }

    #[test]
    fn expr_builds() {
        let e = Expr::And(
            Box::new(Expr::Cmp {
                field: "domain".into(),
                op: CmpOp::Eq,
                value: Literal::Str("legal".into()),
            }),
            Box::new(Expr::Not(Box::new(Expr::Cmp {
                field: "depth".into(),
                op: CmpOp::Gt,
                value: Literal::Num(2.0),
            }))),
        );
        let json = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
