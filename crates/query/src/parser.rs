//! Recursive-descent MLQL parser.
//!
//! Grammar (clauses after the head may appear in any order, each at most
//! once):
//!
//! ```text
//! query      := (FIND | COUNT) MODELS clause* EOF
//! clause     := WHERE expr
//!             | SIMILAR TO MODEL str [USING word] [TOP number]
//!             | MATCHES str [TOP number]
//!             | TRAINED ON DATASET str [INCLUDING VERSIONS]
//!             | OUTPERFORM MODEL str ON BENCHMARK str
//!             | ORDER BY orderkey [ASC|DESC]
//!             | LIMIT number
//! expr       := and_expr (OR and_expr)*
//! and_expr   := unary (AND unary)*
//! unary      := NOT unary | '(' expr ')' | cmp
//! cmp        := field op literal
//! field      := word | SCORE '(' str ')'
//! orderkey   := SCORE '(' str ')' | SIMILARITY | NAME
//! ```

use crate::ast::*;
use crate::error::QueryError;
use crate::lexer::{lex, Token};

/// Parses an MLQL query string.
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let tokens = {
        let _lex_span = mlake_obs::span("query.lex");
        lex(input)?
    };
    let _parse_span = mlake_obs::span("query.parse");
    let mut p = Parser { tokens, pos: 0 };
    let count_only = match p.peek_word().as_deref() {
        Some("FIND") => {
            p.advance();
            false
        }
        Some("COUNT") => {
            p.advance();
            true
        }
        _ => return Err(p.err("FIND or COUNT")),
    };
    p.expect_word("MODELS")?;
    let mut query = Query {
        count_only,
        ..Query::default()
    };
    while !p.at_end() {
        let word = p.peek_word().ok_or_else(|| p.err("a clause keyword"))?;
        match word.as_str() {
            "WHERE" => {
                p.advance();
                if query.filter.is_some() {
                    return Err(p.dup("WHERE"));
                }
                query.filter = Some(p.parse_expr()?);
            }
            "SIMILAR" => {
                p.advance();
                p.expect_word("TO")?;
                p.expect_word("MODEL")?;
                if query.similar.is_some() {
                    return Err(p.dup("SIMILAR TO"));
                }
                let model = p.expect_str()?;
                let mut using = "hybrid".to_string();
                if p.peek_word().as_deref() == Some("USING") {
                    p.advance();
                    using = p
                        .take_word()
                        .ok_or_else(|| p.err("a fingerprint kind"))?
                        .to_ascii_lowercase();
                }
                let mut k = 10usize;
                if p.peek_word().as_deref() == Some("TOP") {
                    p.advance();
                    k = p.expect_number()? as usize;
                }
                query.similar = Some(SimilarClause { model, using, k });
            }
            "MATCHES" => {
                p.advance();
                if query.matches.is_some() {
                    return Err(p.dup("MATCHES"));
                }
                let text = p.expect_str()?;
                let mut k = 10usize;
                if p.peek_word().as_deref() == Some("TOP") {
                    p.advance();
                    k = p.expect_number()? as usize;
                }
                query.matches = Some(MatchClause { query: text, k });
            }
            "TRAINED" => {
                p.advance();
                p.expect_word("ON")?;
                p.expect_word("DATASET")?;
                if query.trained_on.is_some() {
                    return Err(p.dup("TRAINED ON"));
                }
                let dataset = p.expect_str()?;
                let mut include_versions = false;
                if p.peek_word().as_deref() == Some("INCLUDING") {
                    p.advance();
                    p.expect_word("VERSIONS")?;
                    include_versions = true;
                }
                query.trained_on = Some(TrainedOnClause {
                    dataset,
                    include_versions,
                });
            }
            "OUTPERFORM" => {
                p.advance();
                p.expect_word("MODEL")?;
                if query.outperform.is_some() {
                    return Err(p.dup("OUTPERFORM"));
                }
                let model = p.expect_str()?;
                p.expect_word("ON")?;
                p.expect_word("BENCHMARK")?;
                let benchmark = p.expect_str()?;
                query.outperform = Some(OutperformClause { model, benchmark });
            }
            "ORDER" => {
                p.advance();
                p.expect_word("BY")?;
                if query.order_by.is_some() {
                    return Err(p.dup("ORDER BY"));
                }
                let key = match p.take_word().as_deref() {
                    Some("SCORE") => {
                        p.expect(&Token::LParen)?;
                        let b = p.expect_str()?;
                        p.expect(&Token::RParen)?;
                        OrderKey::Score(b)
                    }
                    Some("SIMILARITY") => OrderKey::Similarity,
                    Some("NAME") => OrderKey::Name,
                    other => {
                        return Err(QueryError::Parse {
                            expected: "SCORE(...), SIMILARITY or NAME".into(),
                            found: other.unwrap_or("end of input").into(),
                        })
                    }
                };
                let mut desc = matches!(key, OrderKey::Score(_) | OrderKey::Similarity);
                match p.peek_word().as_deref() {
                    Some("DESC") => {
                        p.advance();
                        desc = true;
                    }
                    Some("ASC") => {
                        p.advance();
                        desc = false;
                    }
                    _ => {}
                }
                query.order_by = Some(OrderBy { key, desc });
            }
            "LIMIT" => {
                p.advance();
                if query.limit.is_some() {
                    return Err(p.dup("LIMIT"));
                }
                query.limit = Some(p.expect_number()? as usize);
            }
            other => {
                return Err(QueryError::Parse {
                    expected: "WHERE / SIMILAR / MATCHES / TRAINED / OUTPERFORM / ORDER / LIMIT"
                        .into(),
                    found: other.into(),
                })
            }
        }
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_word(&self) -> Option<String> {
        match self.peek() {
            Some(Token::Word(w)) => Some(w.clone()),
            _ => None,
        }
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn take_word(&mut self) -> Option<String> {
        let w = self.peek_word()?;
        self.advance();
        Some(w)
    }

    fn err(&self, expected: &str) -> QueryError {
        QueryError::Parse {
            expected: expected.into(),
            found: self
                .peek()
                .map(Token::describe)
                .unwrap_or_else(|| "end of input".into()),
        }
    }

    fn dup(&self, clause: &str) -> QueryError {
        QueryError::Parse {
            expected: format!("at most one {clause} clause"),
            found: format!("duplicate {clause}"),
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), QueryError> {
        if self.peek() == Some(tok) {
            self.advance();
            Ok(())
        } else {
            Err(self.err(&tok.describe()))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), QueryError> {
        if self.peek_word().as_deref() == Some(word) {
            self.advance();
            Ok(())
        } else {
            Err(self.err(word))
        }
    }

    fn expect_str(&mut self) -> Result<String, QueryError> {
        match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.err("a string literal")),
        }
    }

    fn expect_number(&mut self) -> Result<f64, QueryError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.advance();
                Ok(n)
            }
            _ => Err(self.err("a number")),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_and()?;
        while self.peek_word().as_deref() == Some("OR") {
            self.advance();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_unary()?;
        while self.peek_word().as_deref() == Some("AND") {
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, QueryError> {
        if self.peek_word().as_deref() == Some("NOT") {
            self.advance();
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.advance();
            let inner = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr, QueryError> {
        let field = match self.take_word() {
            Some(w) if w == "SCORE" => {
                self.expect(&Token::LParen)?;
                let b = self.expect_str()?;
                self.expect(&Token::RParen)?;
                format!("score:{b}")
            }
            Some(w) => w.to_ascii_lowercase(),
            None => return Err(self.err("a field name")),
        };
        let op = match self.peek().cloned() {
            Some(Token::Eq) => {
                self.advance();
                CmpOp::Eq
            }
            Some(Token::Ne) => {
                self.advance();
                CmpOp::Ne
            }
            Some(Token::Lt) => {
                self.advance();
                CmpOp::Lt
            }
            Some(Token::Le) => {
                self.advance();
                CmpOp::Le
            }
            Some(Token::Gt) => {
                self.advance();
                CmpOp::Gt
            }
            Some(Token::Ge) => {
                self.advance();
                CmpOp::Ge
            }
            Some(Token::Word(w)) if w == "LIKE" => {
                self.advance();
                CmpOp::Like
            }
            _ => return Err(self.err("a comparison operator")),
        };
        let value = match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.advance();
                Literal::Str(s)
            }
            Some(Token::Number(n)) => {
                self.advance();
                Literal::Num(n)
            }
            _ => return Err(self.err("a literal")),
        };
        Ok(Expr::Cmp { field, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("FIND MODELS").unwrap();
        assert_eq!(q, Query::default());
    }

    #[test]
    fn full_query() {
        let q = parse(
            "FIND MODELS \
             WHERE domain = 'legal' AND (arch LIKE 'mlp%' OR NOT depth > 2) \
             SIMILAR TO MODEL 'legal-base' USING weights TOP 5 \
             TRAINED ON DATASET 'legal-tab-v1' INCLUDING VERSIONS \
             OUTPERFORM MODEL 'rival' ON BENCHMARK 'holdout' \
             ORDER BY score('holdout') DESC \
             LIMIT 10",
        )
        .unwrap();
        assert!(q.filter.is_some());
        let sim = q.similar.unwrap();
        assert_eq!(sim.model, "legal-base");
        assert_eq!(sim.using, "weights");
        assert_eq!(sim.k, 5);
        let tr = q.trained_on.unwrap();
        assert!(tr.include_versions);
        assert_eq!(tr.dataset, "legal-tab-v1");
        let op = q.outperform.unwrap();
        assert_eq!(op.benchmark, "holdout");
        let ob = q.order_by.unwrap();
        assert_eq!(ob.key, OrderKey::Score("holdout".into()));
        assert!(ob.desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn where_precedence_and_not() {
        let q = parse("FIND MODELS WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter: a=1 OR (b=2 AND c=3).
        match q.filter.unwrap() {
            Expr::Or(l, r) => {
                assert!(matches!(*l, Expr::Cmp { .. }));
                assert!(matches!(*r, Expr::And(_, _)));
            }
            other => panic!("wrong tree: {other:?}"),
        }
        let q = parse("FIND MODELS WHERE NOT NOT a = 1").unwrap();
        assert!(matches!(q.filter.unwrap(), Expr::Not(_)));
    }

    #[test]
    fn score_field_in_where() {
        let q = parse("FIND MODELS WHERE score('holdout') >= 0.9").unwrap();
        match q.filter.unwrap() {
            Expr::Cmp { field, op, value } => {
                assert_eq!(field, "score:holdout");
                assert_eq!(op, CmpOp::Ge);
                assert_eq!(value, Literal::Num(0.9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse("find models where Domain = 'legal' limit 3").unwrap();
        assert_eq!(q.limit, Some(3));
        match q.filter.unwrap() {
            Expr::Cmp { field, .. } => assert_eq!(field, "domain"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_defaults() {
        let q = parse("FIND MODELS ORDER BY similarity").unwrap();
        assert!(q.order_by.unwrap().desc);
        let q = parse("FIND MODELS ORDER BY name").unwrap();
        assert!(!q.order_by.unwrap().desc);
        let q = parse("FIND MODELS ORDER BY score('b') ASC").unwrap();
        assert!(!q.order_by.unwrap().desc);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT MODELS").is_err());
        assert!(parse("FIND MODELS WHERE").is_err());
        assert!(parse("FIND MODELS WHERE a =").is_err());
        assert!(parse("FIND MODELS LIMIT 'x'").is_err());
        assert!(parse("FIND MODELS WHERE (a = 1").is_err());
        assert!(parse("FIND MODELS BOGUS").is_err());
        assert!(parse("FIND MODELS LIMIT 1 LIMIT 2").is_err());
        assert!(parse("FIND MODELS ORDER BY banana").is_err());
        assert!(parse("FIND MODELS SIMILAR TO MODEL 5").is_err());
    }

    #[test]
    fn count_head() {
        let q = parse("COUNT MODELS WHERE domain = 'legal'").unwrap();
        assert!(q.count_only);
        assert!(q.filter.is_some());
        assert!(!parse("FIND MODELS").unwrap().count_only);
        assert!(parse("TALLY MODELS").is_err());
    }

    #[test]
    fn matches_clause() {
        let q = parse("FIND MODELS MATCHES 'sentiment finance' TOP 7").unwrap();
        let m = q.matches.unwrap();
        assert_eq!(m.query, "sentiment finance");
        assert_eq!(m.k, 7);
        // Default pool size, composition with other clauses, dup check.
        let q = parse("FIND MODELS MATCHES 'legal' WHERE depth > 1").unwrap();
        assert_eq!(q.matches.unwrap().k, 10);
        assert!(q.filter.is_some());
        assert!(parse("FIND MODELS MATCHES 'a' MATCHES 'b'").is_err());
        assert!(parse("FIND MODELS MATCHES 5").is_err());
    }

    #[test]
    fn similar_defaults() {
        let q = parse("FIND MODELS SIMILAR TO MODEL 'x'").unwrap();
        let sim = q.similar.unwrap();
        assert_eq!(sim.using, "hybrid");
        assert_eq!(sim.k, 10);
    }
}
