//! MLQL lexer: case-insensitive keywords, `'…'` string literals, numbers,
//! comparison operators and punctuation.

use crate::error::QueryError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Case-normalised keyword or bare identifier (upper-cased).
    Word(String),
    /// Quoted string literal (contents, unquoted).
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
}

impl Token {
    /// Human-readable form for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Word(w) => w.clone(),
            Token::Str(s) => format!("'{s}'"),
            Token::Number(n) => n.to_string(),
            Token::Eq => "=".into(),
            Token::Ne => "!=".into(),
            Token::Lt => "<".into(),
            Token::Le => "<=".into(),
            Token::Gt => ">".into(),
            Token::Ge => ">=".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::Comma => ",".into(),
        }
    }
}

/// Tokenises an MLQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Lex {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.')
                {
                    j += 1;
                }
                let text = &input[start..j];
                let n: f64 = text.parse().map_err(|_| QueryError::Lex {
                    position: start,
                    message: format!("bad number '{text}'"),
                })?;
                tokens.push(Token::Number(n));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'-')
                {
                    j += 1;
                }
                tokens.push(Token::Word(input[start..j].to_ascii_uppercase()));
                i = j;
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_strings() {
        let t = lex("FIND models WHERE domain = 'legal'").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("FIND".into()),
                Token::Word("MODELS".into()),
                Token::Word("WHERE".into()),
                Token::Word("DOMAIN".into()),
                Token::Eq,
                Token::Str("legal".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let t = lex("a <= 2 b >= 3 c != 4 d <> 5 e < 6 f > 7").unwrap();
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Lt));
        assert!(t.contains(&Token::Gt));
        assert_eq!(t.iter().filter(|x| **x == Token::Ne).count(), 2);
    }

    #[test]
    fn numbers_and_parens() {
        let t = lex("score('b') >= 0.85 LIMIT 10").unwrap();
        assert!(t.contains(&Token::Number(0.85)));
        assert!(t.contains(&Token::Number(10.0)));
        assert!(t.contains(&Token::LParen));
        assert!(t.contains(&Token::RParen));
    }

    #[test]
    fn string_preserves_case_and_dashes() {
        let t = lex("'Legal-Tab-V1'").unwrap();
        assert_eq!(t, vec![Token::Str("Legal-Tab-V1".into())]);
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(lex("'unterminated"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("a ! b"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("a # b"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("1.2.3"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn describe_tokens() {
        assert_eq!(Token::Str("x".into()).describe(), "'x'");
        assert_eq!(Token::Le.describe(), "<=");
        assert_eq!(Token::Comma.describe(), ",");
    }
}
