//! MLQL planning and execution over an abstract [`QueryTarget`].
//!
//! The executor is lake-agnostic: `mlake-core` implements [`QueryTarget`]
//! and thereby exposes its indexes (metadata, vector, benchmark) to MLQL.
//! The planner's access-path choice — similarity index vs trained-on
//! relation vs benchmark join vs full scan — mirrors §6's "the model lake
//! framework can map the task function to a suitable indexer".

use crate::ast::{like_match, CmpOp, Expr, Literal, OrderKey, Query};
use crate::error::QueryError;

/// A typed field value exposed by the lake's metadata catalogue.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Textual field (name, domain, arch, transform, …).
    Str(String),
    /// Numeric field (depth, params, score:…).
    Num(f64),
    /// Multi-valued textual field (tags); `=`/`LIKE` match any element.
    StrList(Vec<String>),
}

/// What the executor needs from a lake.
pub trait QueryTarget {
    /// All model ids, in stable order.
    fn all_models(&self) -> Vec<u64>;

    /// Metadata field of a model (`None` when undefined for the model).
    /// Recognised fields include `name`, `domain`, `arch`, `family`,
    /// `transform`, `depth`, `params`, `task`, and `score:<benchmark>`.
    fn field(&self, id: u64, field: &str) -> Option<FieldValue>;

    /// Up to `k` models most similar to `model` under fingerprint `using`
    /// ("weights" | "behavior" | "hybrid"), with similarity in `[0, 1]`,
    /// best first, excluding the query model itself.
    fn similar_models(
        &self,
        model: &str,
        using: &str,
        k: usize,
    ) -> Result<Vec<(u64, f32)>, QueryError>;

    /// Up to `k` models ranked by full-text relevance (BM25) against
    /// `query`, best first, score descending.
    fn text_search(&self, query: &str, k: usize) -> Result<Vec<(u64, f32)>, QueryError>;

    /// Models trained on `dataset` (optionally including derived versions).
    fn trained_on(&self, dataset: &str, include_versions: bool)
        -> Result<Vec<u64>, QueryError>;

    /// Models strictly outperforming `model` on `benchmark`.
    fn outperformers(&self, model: &str, benchmark: &str) -> Result<Vec<u64>, QueryError>;
}

/// One result row.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueryHit {
    /// Model id.
    pub id: u64,
    /// Similarity (when a SIMILAR TO clause ran).
    pub similarity: Option<f32>,
    /// BM25 relevance (when a MATCHES clause ran; absent in pre-§16
    /// serialized hits).
    #[serde(default)]
    pub text_score: Option<f32>,
    /// Ranking score (when ORDER BY score(...) ran).
    pub score: Option<f64>,
}

/// Candidate-pool size below which the metadata filter stays serial: the
/// pool dispatch overhead only pays for itself once per-row field lookups
/// amortize it.
const PAR_FILTER_MIN_POOL: usize = 32;

/// Executes `query` against `target`, returning ranked hits.
///
/// The metadata-filter stage is the executor's scan: on pools of at least
/// [`PAR_FILTER_MIN_POOL`] candidates it fans out over the shared
/// `mlake-par` pool in fixed index-ordered blocks. Filter evaluation is a
/// pure predicate per row, so the kept set — and therefore the result —
/// is bit-identical to the serial scan at every thread count.
pub fn execute(
    query: &Query,
    target: &(dyn QueryTarget + Sync),
) -> Result<Vec<QueryHit>, QueryError> {
    let _exec_span = mlake_obs::span("query.exec");
    // ---- access path: narrowest clause first --------------------------
    let mut similarity: std::collections::HashMap<u64, f32> = std::collections::HashMap::new();
    let mut candidates: Option<Vec<u64>> = None;
    if let Some(sim) = &query.similar {
        let ranked = target.similar_models(&sim.model, &sim.using, sim.k)?;
        for &(id, s) in &ranked {
            similarity.insert(id, s);
        }
        candidates = Some(ranked.into_iter().map(|(id, _)| id).collect());
    }
    let mut text_score: std::collections::HashMap<u64, f32> = std::collections::HashMap::new();
    if let Some(m) = &query.matches {
        let ranked = target.text_search(&m.query, m.k)?;
        for &(id, s) in &ranked {
            text_score.insert(id, s);
        }
        let ids: Vec<u64> = ranked.into_iter().map(|(id, _)| id).collect();
        candidates = Some(intersect(candidates, ids));
    }
    if let Some(t) = &query.trained_on {
        let ids = target.trained_on(&t.dataset, t.include_versions)?;
        candidates = Some(intersect(candidates, ids));
    }
    if let Some(o) = &query.outperform {
        let ids = target.outperformers(&o.model, &o.benchmark)?;
        candidates = Some(intersect(candidates, ids));
    }
    let pool = candidates.unwrap_or_else(|| target.all_models());

    // ---- filter (the scan stage) ------------------------------------
    let mut hits: Vec<QueryHit> = match &query.filter {
        Some(expr) if pool.len() >= PAR_FILTER_MIN_POOL => {
            let _scan_span = mlake_obs::span("query.scan.par");
            // One verdict per pool slot, in pool order; assembling the
            // kept rows serially afterwards preserves the exact order a
            // serial scan would produce.
            let keep = mlake_par::par_map(&pool, |&id| eval(expr, id, target));
            pool.iter()
                .zip(keep)
                .filter_map(|(&id, kept)| kept.then_some(id))
                .map(|id| QueryHit {
                    id,
                    similarity: similarity.get(&id).copied(),
                    text_score: text_score.get(&id).copied(),
                    score: None,
                })
                .collect()
        }
        filter => pool
            .iter()
            .filter(|&&id| filter.as_ref().is_none_or(|expr| eval(expr, id, target)))
            .map(|&id| QueryHit {
                id,
                similarity: similarity.get(&id).copied(),
                text_score: text_score.get(&id).copied(),
                score: None,
            })
            .collect(),
    };

    // ---- order ------------------------------------------------------
    if let Some(order) = &query.order_by {
        match &order.key {
            OrderKey::Score(bench) => {
                let field = format!("score:{bench}");
                for h in &mut hits {
                    h.score = match target.field(h.id, &field) {
                        Some(FieldValue::Num(n)) => Some(n),
                        _ => None,
                    };
                }
                hits.sort_by(|a, b| {
                    // Missing scores sort last regardless of direction.
                    match (a.score, b.score) {
                        (Some(x), Some(y)) => {
                            if order.desc {
                                y.total_cmp(&x)
                            } else {
                                x.total_cmp(&y)
                            }
                        }
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => a.id.cmp(&b.id),
                    }
                });
            }
            OrderKey::Similarity => {
                hits.sort_by(|a, b| {
                    let sa = a.similarity.unwrap_or(f32::NEG_INFINITY);
                    let sb = b.similarity.unwrap_or(f32::NEG_INFINITY);
                    if order.desc {
                        sb.total_cmp(&sa)
                    } else {
                        sa.total_cmp(&sb)
                    }
                });
            }
            OrderKey::Name => {
                hits.sort_by(|a, b| {
                    let na = name_of(target, a.id);
                    let nb = name_of(target, b.id);
                    if order.desc {
                        nb.cmp(&na)
                    } else {
                        na.cmp(&nb)
                    }
                });
            }
        }
    } else if query.similar.is_some() {
        // Implicit similarity ranking when a SIMILAR TO clause is present.
        hits.sort_by(|a, b| {
            b.similarity
                .unwrap_or(f32::NEG_INFINITY)
                .total_cmp(&a.similarity.unwrap_or(f32::NEG_INFINITY))
        });
    } else if query.matches.is_some() {
        // Implicit relevance ranking when only MATCHES narrows the pool.
        hits.sort_by(|a, b| {
            b.text_score
                .unwrap_or(f32::NEG_INFINITY)
                .total_cmp(&a.text_score.unwrap_or(f32::NEG_INFINITY))
        });
    }

    if let Some(limit) = query.limit {
        hits.truncate(limit);
    }
    Ok(hits)
}

/// Human-readable execution plan: which access paths the query will use, in
/// order — the §6 "map the task function to a suitable indexer" narration.
pub fn explain(query: &Query) -> Vec<String> {
    let _plan_span = mlake_obs::span("query.plan");
    let mut steps = Vec::new();
    if let Some(sim) = &query.similar {
        steps.push(format!(
            "ANN-INDEX SCAN: top-{} of fingerprint('{}') around model '{}'",
            sim.k, sim.using, sim.model
        ));
    }
    if let Some(m) = &query.matches {
        steps.push(format!(
            "TEXT-INDEX SCAN (BM25): top-{} for '{}'",
            m.k, m.query
        ));
    }
    if let Some(t) = &query.trained_on {
        steps.push(format!(
            "PROVENANCE LOOKUP: trained_on('{}'){}",
            t.dataset,
            if t.include_versions { " + dataset versions" } else { "" }
        ));
    }
    if let Some(o) = &query.outperform {
        steps.push(format!(
            "LEADERBOARD JOIN: outperformers of '{}' on '{}'",
            o.model, o.benchmark
        ));
    }
    if steps.is_empty() {
        steps.push("FULL CATALOG SCAN".to_string());
    }
    if query.filter.is_some() {
        steps.push("METADATA FILTER".to_string());
    }
    if let Some(ob) = &query.order_by {
        steps.push(format!(
            "SORT BY {:?} {}",
            ob.key,
            if ob.desc { "DESC" } else { "ASC" }
        ));
    }
    if let Some(l) = query.limit {
        steps.push(format!("LIMIT {l}"));
    }
    steps
}

fn name_of(target: &dyn QueryTarget, id: u64) -> String {
    match target.field(id, "name") {
        Some(FieldValue::Str(s)) => s,
        _ => String::new(),
    }
}

fn intersect(current: Option<Vec<u64>>, new_ids: Vec<u64>) -> Vec<u64> {
    match current {
        None => new_ids,
        Some(cur) => cur.into_iter().filter(|id| new_ids.contains(id)).collect(),
    }
}

fn eval(expr: &Expr, id: u64, target: &dyn QueryTarget) -> bool {
    match expr {
        Expr::And(a, b) => eval(a, id, target) && eval(b, id, target),
        Expr::Or(a, b) => eval(a, id, target) || eval(b, id, target),
        Expr::Not(a) => !eval(a, id, target),
        Expr::Cmp { field, op, value } => {
            let Some(fv) = target.field(id, field) else {
                return false;
            };
            match (fv, value) {
                (FieldValue::Str(s), Literal::Str(lit)) => cmp_str(&s, *op, lit),
                (FieldValue::StrList(items), Literal::Str(lit)) => match op {
                    CmpOp::Ne => items.iter().all(|s| !s.eq_ignore_ascii_case(lit)),
                    _ => items.iter().any(|s| cmp_str(s, *op, lit)),
                },
                (FieldValue::Num(n), Literal::Num(lit)) => cmp_num(n, *op, *lit),
                // Type mismatch never matches (except Ne, which is true).
                _ => *op == CmpOp::Ne,
            }
        }
    }
}

fn cmp_str(s: &str, op: CmpOp, lit: &str) -> bool {
    match op {
        CmpOp::Eq => s.eq_ignore_ascii_case(lit),
        CmpOp::Ne => !s.eq_ignore_ascii_case(lit),
        CmpOp::Like => like_match(lit, s),
        CmpOp::Lt => s < lit,
        CmpOp::Le => s <= lit,
        CmpOp::Gt => s > lit,
        CmpOp::Ge => s >= lit,
    }
}

fn cmp_num(n: f64, op: CmpOp, lit: f64) -> bool {
    match op {
        CmpOp::Eq => n == lit,
        CmpOp::Ne => n != lit,
        CmpOp::Lt => n < lit,
        CmpOp::Le => n <= lit,
        CmpOp::Gt => n > lit,
        CmpOp::Ge => n >= lit,
        CmpOp::Like => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// A toy in-memory lake for executor tests.
    struct ToyLake;

    const NAMES: [&str; 4] = ["legal-base", "legal-ft", "medical-base", "news-lm"];
    const DOMAINS: [&str; 4] = ["legal", "legal", "medical", "news"];
    const DEPTHS: [f64; 4] = [0.0, 1.0, 0.0, 0.0];
    const SCORES: [Option<f64>; 4] = [Some(0.9), Some(0.95), Some(0.4), None];

    impl QueryTarget for ToyLake {
        fn all_models(&self) -> Vec<u64> {
            vec![0, 1, 2, 3]
        }

        fn field(&self, id: u64, field: &str) -> Option<FieldValue> {
            let i = id as usize;
            match field {
                "name" => Some(FieldValue::Str(NAMES[i].into())),
                "domain" => Some(FieldValue::Str(DOMAINS[i].into())),
                "depth" => Some(FieldValue::Num(DEPTHS[i])),
                "tags" => Some(FieldValue::StrList(vec![
                    "classification".into(),
                    DOMAINS[i].into(),
                ])),
                "score:holdout" => SCORES[i].map(FieldValue::Num),
                _ => None,
            }
        }

        fn similar_models(
            &self,
            model: &str,
            _using: &str,
            k: usize,
        ) -> Result<Vec<(u64, f32)>, QueryError> {
            if model != "legal-base" {
                return Err(QueryError::UnknownEntity {
                    kind: "model",
                    name: model.into(),
                });
            }
            Ok(vec![(1, 0.95), (2, 0.3)].into_iter().take(k).collect())
        }

        fn text_search(&self, query: &str, k: usize) -> Result<Vec<(u64, f32)>, QueryError> {
            // Toy relevance: a name matching any query token scores by
            // how early the model sits in the catalogue.
            Ok(NAMES
                .iter()
                .enumerate()
                .filter(|(_, n)| query.split_whitespace().any(|t| n.contains(t)))
                .map(|(i, _)| (i as u64, 1.0 / (i as f32 + 1.0)))
                .take(k)
                .collect())
        }

        fn trained_on(
            &self,
            dataset: &str,
            include_versions: bool,
        ) -> Result<Vec<u64>, QueryError> {
            match (dataset, include_versions) {
                ("legal-tab-v1", false) => Ok(vec![0]),
                ("legal-tab-v1", true) => Ok(vec![0, 1]),
                _ => Ok(vec![]),
            }
        }

        fn outperformers(&self, _model: &str, _benchmark: &str) -> Result<Vec<u64>, QueryError> {
            Ok(vec![1])
        }
    }

    fn run(q: &str) -> Vec<u64> {
        execute(&parse(q).unwrap(), &ToyLake)
            .unwrap()
            .into_iter()
            .map(|h| h.id)
            .collect()
    }

    #[test]
    fn filter_only() {
        assert_eq!(run("FIND MODELS WHERE domain = 'legal'"), vec![0, 1]);
        assert_eq!(run("FIND MODELS WHERE domain != 'legal'"), vec![2, 3]);
        assert_eq!(run("FIND MODELS WHERE name LIKE '%base'"), vec![0, 2]);
        assert_eq!(run("FIND MODELS WHERE depth > 0"), vec![1]);
        assert_eq!(
            run("FIND MODELS WHERE domain = 'legal' AND depth = 0"),
            vec![0]
        );
        assert_eq!(
            run("FIND MODELS WHERE NOT (domain = 'legal' OR domain = 'news')"),
            vec![2]
        );
    }

    #[test]
    fn taglist_matching() {
        assert_eq!(run("FIND MODELS WHERE tags = 'classification'"), vec![0, 1, 2, 3]);
        assert_eq!(run("FIND MODELS WHERE tags = 'medical'"), vec![2]);
        assert_eq!(run("FIND MODELS WHERE tags != 'medical'"), vec![0, 1, 3]);
    }

    #[test]
    fn similarity_ranking_and_limit() {
        let hits = execute(
            &parse("FIND MODELS SIMILAR TO MODEL 'legal-base' TOP 5").unwrap(),
            &ToyLake,
        )
        .unwrap();
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[0].similarity, Some(0.95));
        assert_eq!(hits.len(), 2);
        assert_eq!(
            run("FIND MODELS SIMILAR TO MODEL 'legal-base' LIMIT 1"),
            vec![1]
        );
    }

    #[test]
    fn matches_ranks_and_intersects() {
        // 'legal' matches ids 0 and 1; id 0 scores higher.
        let hits = execute(&parse("FIND MODELS MATCHES 'legal'").unwrap(), &ToyLake).unwrap();
        assert_eq!(
            hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(hits[0].text_score, Some(1.0));
        assert_eq!(hits[1].text_score, Some(0.5));
        // Composes with WHERE (depth > 0 keeps only id 1)...
        assert_eq!(run("FIND MODELS MATCHES 'legal' WHERE depth > 0"), vec![1]);
        // ...and intersects with SIMILAR (similar {1,2} ∩ text {0,1}).
        assert_eq!(
            run("FIND MODELS SIMILAR TO MODEL 'legal-base' MATCHES 'legal'"),
            vec![1]
        );
        assert!(run("FIND MODELS MATCHES 'zebra'").is_empty());
    }

    #[test]
    fn trained_on_with_versions() {
        assert_eq!(run("FIND MODELS TRAINED ON DATASET 'legal-tab-v1'"), vec![0]);
        assert_eq!(
            run("FIND MODELS TRAINED ON DATASET 'legal-tab-v1' INCLUDING VERSIONS"),
            vec![0, 1]
        );
        assert!(run("FIND MODELS TRAINED ON DATASET 'nothing'").is_empty());
    }

    #[test]
    fn clause_intersection() {
        // similar gives {1, 2}; trained_on versions gives {0, 1} -> {1}.
        assert_eq!(
            run("FIND MODELS SIMILAR TO MODEL 'legal-base' TRAINED ON DATASET 'legal-tab-v1' INCLUDING VERSIONS"),
            vec![1]
        );
        assert_eq!(
            run("FIND MODELS OUTPERFORM MODEL 'legal-base' ON BENCHMARK 'holdout'"),
            vec![1]
        );
    }

    #[test]
    fn order_by_score_missing_last() {
        let ids = run("FIND MODELS ORDER BY score('holdout') DESC");
        assert_eq!(ids, vec![1, 0, 2, 3]); // id 3 has no score -> last
        let asc = run("FIND MODELS ORDER BY score('holdout') ASC");
        assert_eq!(asc, vec![2, 0, 1, 3]);
    }

    #[test]
    fn order_by_name() {
        let ids = run("FIND MODELS ORDER BY name ASC");
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let ids = run("FIND MODELS ORDER BY name DESC");
        assert_eq!(ids, vec![3, 2, 1, 0]);
    }

    #[test]
    fn unknown_model_errors() {
        let q = parse("FIND MODELS SIMILAR TO MODEL 'ghost'").unwrap();
        assert!(matches!(
            execute(&q, &ToyLake),
            Err(QueryError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn unknown_field_never_matches() {
        assert!(run("FIND MODELS WHERE banana = 'yellow'").is_empty());
    }

    /// A target big enough to cross [`PAR_FILTER_MIN_POOL`], with fields
    /// derived from the id so expected results are computable.
    struct WideLake(usize);

    impl QueryTarget for WideLake {
        fn all_models(&self) -> Vec<u64> {
            (0..self.0 as u64).collect()
        }

        fn field(&self, id: u64, field: &str) -> Option<FieldValue> {
            match field {
                "name" => Some(FieldValue::Str(format!("m{id:04}"))),
                "domain" => Some(FieldValue::Str(
                    ["legal", "medical", "news"][(id % 3) as usize].into(),
                )),
                "depth" => Some(FieldValue::Num((id % 7) as f64)),
                _ => None,
            }
        }

        fn similar_models(
            &self,
            model: &str,
            _using: &str,
            _k: usize,
        ) -> Result<Vec<(u64, f32)>, QueryError> {
            Err(QueryError::UnknownEntity {
                kind: "model",
                name: model.into(),
            })
        }

        fn text_search(&self, _: &str, _: usize) -> Result<Vec<(u64, f32)>, QueryError> {
            Ok(vec![])
        }

        fn trained_on(&self, _: &str, _: bool) -> Result<Vec<u64>, QueryError> {
            Ok(vec![])
        }

        fn outperformers(&self, _: &str, _: &str) -> Result<Vec<u64>, QueryError> {
            Ok(vec![])
        }
    }

    /// The parallel scan must be bit-identical to the serial program on a
    /// pool large enough to actually fan out.
    #[test]
    fn parallel_filter_matches_serial() {
        let lake = WideLake(500);
        for q in [
            "FIND MODELS WHERE domain = 'legal'",
            "FIND MODELS WHERE domain != 'news' AND depth > 2",
            "FIND MODELS WHERE name LIKE 'm00%' OR depth = 6",
            "FIND MODELS WHERE depth < 3 ORDER BY name DESC LIMIT 40",
        ] {
            let parsed = parse(q).unwrap();
            let par = execute(&parsed, &lake).unwrap();
            let serial = mlake_par::serial(|| execute(&parsed, &lake).unwrap());
            assert_eq!(par, serial, "{q}: parallel vs serial scan");
            assert!(!par.is_empty(), "{q}: scan found nothing");
        }
    }

    #[test]
    fn explain_lists_access_paths() {
        let q = parse(
            "FIND MODELS WHERE domain = 'legal' SIMILAR TO MODEL 'legal-base' \
             ORDER BY similarity LIMIT 3",
        )
        .unwrap();
        let plan = explain(&q);
        assert!(plan[0].contains("ANN-INDEX SCAN"));
        assert!(plan.iter().any(|s| s.contains("METADATA FILTER")));
        assert!(plan.iter().any(|s| s.contains("LIMIT 3")));
        let scan = explain(&parse("FIND MODELS").unwrap());
        assert_eq!(scan, vec!["FULL CATALOG SCAN".to_string()]);
        let plan = explain(&parse("FIND MODELS MATCHES 'rnn finance' TOP 3").unwrap());
        assert!(plan[0].contains("TEXT-INDEX SCAN (BM25)"));
        assert!(plan[0].contains("top-3"));
    }
}
