//! Property-based tests for the MLQL language layer: the lexer never
//! panics, parse→debug round trips are stable, and LIKE matching obeys
//! algebraic identities.

use mlake_query::ast::like_match;
use mlake_query::{lexer, parse};
use proptest::prelude::*;

proptest! {
    /// The lexer returns Ok or Err but never panics, on arbitrary input.
    #[test]
    fn lexer_total(input in ".*") {
        let _ = lexer::lex(&input);
    }

    /// The parser is total over arbitrary token soup.
    #[test]
    fn parser_total(input in "[A-Za-z0-9'%_() =<>!.,-]{0,80}") {
        let _ = parse(&input);
    }

    /// Any string matches itself, the universal pattern, and prefix/suffix
    /// wildcard forms built from itself.
    #[test]
    fn like_identities(s in "[a-z0-9-]{0,20}") {
        prop_assert!(like_match(&s, &s));
        prop_assert!(like_match("%", &s));
        let prefix = format!("{s}%");
        let suffix = format!("%{s}");
        prop_assert!(like_match(&prefix, &s));
        prop_assert!(like_match(&suffix, &s));
        if s.len() >= 2 {
            let (a, b) = s.split_at(s.len() / 2);
            let infix = format!("{a}%{b}");
            let outer = format!("%{a}%{b}%");
            prop_assert!(like_match(&infix, &s));
            prop_assert!(like_match(&outer, &s));
        }
    }

    /// LIKE is case-insensitive in both directions.
    #[test]
    fn like_case_insensitive(s in "[a-z]{1,12}") {
        prop_assert!(like_match(&s.to_uppercase(), &s));
        prop_assert!(like_match(&s, &s.to_uppercase()));
    }

    /// A pattern longer (ignoring %) than the value never matches.
    #[test]
    fn like_length_bound(s in "[a-z]{0,10}", extra in "[a-z]{1,5}") {
        let pattern = format!("{s}{extra}");
        prop_assert!(!like_match(&pattern, &s));
    }

    /// Well-formed filter queries parse, and parse deterministically.
    #[test]
    fn filters_parse(field in "[a-z_]{1,10}", value in "[a-z0-9 ]{0,10}", n in 0u32..1000) {
        let q1 = format!("FIND MODELS WHERE {field} = '{value}' AND {field} <= {n} LIMIT {n}");
        let a = parse(&q1);
        let b = parse(&q1);
        prop_assert!(a.is_ok(), "{q1}: {a:?}");
        prop_assert_eq!(a.unwrap(), b.unwrap());
    }

    /// Parenthesisation of a single comparison is a no-op.
    #[test]
    fn parens_are_noise(field in "[a-z]{1,8}", n in 0u32..100) {
        let plain = parse(&format!("FIND MODELS WHERE {field} > {n}")).unwrap();
        let wrapped = parse(&format!("FIND MODELS WHERE ((({field} > {n})))")).unwrap();
        prop_assert_eq!(plain, wrapped);
    }
}
