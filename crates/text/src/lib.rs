//! # mlake-text
//!
//! Full-text search over model documentation (DESIGN.md §16). The paper's
//! own benchmark tag is `PalBM25`, and two related systems (ModelTables,
//! Diversed Model Discovery) find models through their *documentation* —
//! this crate supplies the text half of that story with zero external
//! dependencies:
//!
//! * [`Tokenizer`] — lowercase, alphanumeric word-split, unicode-safe,
//!   with a configurable stopword list and a term-length cap;
//! * [`TextIndex`] — an inverted index with per-term postings
//!   `(doc id, term frequency, field)` over card sections + model
//!   metadata, scored with Okapi BM25 ([`Bm25Params`]);
//! * [`rrf_fuse`] — reciprocal-rank fusion of any number of ranked lists
//!   (BM25 + vector ranks in `mlake-core::ModelLake::hybrid_search`).
//!
//! Everything is deterministic: postings live in `BTreeMap`s, query terms
//! are visited in sorted order, and ties break on ascending doc id — the
//! same query on the same index returns bit-identical results at every
//! thread count, before and after a serde round-trip.

mod fuse;
mod index;
mod tokenizer;

pub use fuse::{rrf_fuse, RRF_C};
pub use index::{Bm25Params, Field, Posting, TextIndex};
pub use tokenizer::{default_stopwords, Tokenizer, MAX_TERM_CHARS};
