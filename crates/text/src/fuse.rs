//! Reciprocal-rank fusion (Cormack, Clarke & Buettcher 2009).
//!
//! RRF combines ranked lists without comparing their raw scores — exactly
//! what hybrid retrieval needs, since a BM25 score and a cosine
//! similarity live on unrelated scales. Each list contributes
//! `1 / (C + rank)` for every item it ranks (rank is 1-based); items
//! missing from a list contribute nothing for it.

/// The standard RRF dampening constant. Large enough that a single
/// first-place vote cannot drown broad mid-list agreement.
pub const RRF_C: f32 = 60.0;

/// Fuses `rankings` (each best-first) into one best-first list of at most
/// `k` items. Ties break on ascending doc id, so fusion of deterministic
/// inputs is deterministic.
pub fn rrf_fuse(rankings: &[Vec<u64>], c: f32, k: usize) -> Vec<(u64, f32)> {
    let mut scores: std::collections::BTreeMap<u64, f32> = std::collections::BTreeMap::new();
    for list in rankings {
        for (rank, doc) in list.iter().enumerate() {
            *scores.entry(*doc).or_insert(0.0) += 1.0 / (c + (rank + 1) as f32);
        }
    }
    let mut fused: Vec<(u64, f32)> = scores.into_iter().collect();
    fused.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    fused.truncate(k);
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_beats_single_list_rank() {
        // Doc 5 is mid-list in both rankings; docs 1 and 9 top one each.
        let fused = rrf_fuse(&[vec![1, 5, 2], vec![9, 5, 3]], RRF_C, 10);
        assert_eq!(fused[0].0, 5);
    }

    #[test]
    fn single_list_is_order_preserving() {
        let fused = rrf_fuse(&[vec![4, 2, 8]], RRF_C, 10);
        let ids: Vec<u64> = fused.iter().map(|(d, _)| *d).collect();
        assert_eq!(ids, vec![4, 2, 8]);
    }

    #[test]
    fn ties_break_on_doc_id_and_k_truncates() {
        let fused = rrf_fuse(&[vec![7], vec![3]], RRF_C, 10);
        assert_eq!(fused[0].0, 3);
        assert_eq!(fused[1].0, 7);
        assert_eq!(rrf_fuse(&[vec![1, 2, 3]], RRF_C, 2).len(), 2);
        assert!(rrf_fuse(&[], RRF_C, 5).is_empty());
    }
}
