//! Inverted index + Okapi BM25 scoring.
//!
//! Postings are the classic triple `(doc id, term frequency, field)`;
//! each card section / metadata item indexes under its own [`Field`] so
//! scoring can weight a name hit above a notes hit. All state lives in
//! `BTreeMap`s and postings vectors stay sorted by `(doc, field)`, which
//! makes iteration order — and therefore floating-point accumulation
//! order — deterministic, and the whole index serde-serializable in a
//! stable form (the §15 block kind `TextIndex`).

use crate::tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which part of a model's documentation a posting came from. Weights
/// bias BM25 toward identity-bearing fields without hiding body text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Field {
    /// Registered model name.
    Name,
    /// Architecture signature.
    Arch,
    /// Card task tags.
    Tags,
    /// Card domains.
    Domains,
    /// Training-algorithm description.
    Algorithm,
    /// Lineage claims (base model, transform, second parent).
    Lineage,
    /// Training-data dataset names.
    Datasets,
    /// Benchmark names from reported metrics.
    Benchmarks,
    /// Free-form notes.
    Notes,
}

impl Field {
    /// Term-frequency multiplier applied at query time.
    pub fn weight(self) -> f32 {
        match self {
            Field::Name => 3.0,
            Field::Tags | Field::Domains => 2.0,
            _ => 1.0,
        }
    }
}

/// One posting: `term` occurs `tf` times in field `field` of doc `doc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Document (lake-local model id).
    pub doc: u64,
    /// Term frequency within that field.
    pub tf: u32,
    /// Field the term occurred in.
    pub field: Field,
}

/// Okapi BM25 parameters. `k1` saturates term frequency; `b` scales the
/// document-length penalty. The defaults are the literature's standard
/// operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2–2.0).
    pub k1: f32,
    /// Length normalization in `[0, 1]`.
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Bm25Params {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// The inverted index. Mutation is single-writer (the lake serializes
/// mutating ops); searches are pure reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextIndex {
    tokenizer: Tokenizer,
    params: Bm25Params,
    /// term → postings sorted by `(doc, field)`.
    terms: BTreeMap<String, Vec<Posting>>,
    /// doc → total token count across all fields (BM25 document length).
    doc_len: BTreeMap<u64, u32>,
    /// Sum of all document lengths (for the average).
    total_len: u64,
}

impl Default for TextIndex {
    fn default() -> TextIndex {
        TextIndex::new(Bm25Params::default())
    }
}

impl TextIndex {
    /// An empty index with the default tokenizer.
    // lint: no-span — constructor; nothing to measure
    pub fn new(params: Bm25Params) -> TextIndex {
        TextIndex::with_tokenizer(params, Tokenizer::default())
    }

    /// An empty index with a custom tokenizer (stopwords, term cap).
    // lint: no-span — constructor; nothing to measure
    pub fn with_tokenizer(params: Bm25Params, tokenizer: Tokenizer) -> TextIndex {
        TextIndex {
            tokenizer,
            params,
            terms: BTreeMap::new(),
            doc_len: BTreeMap::new(),
            total_len: 0,
        }
    }

    /// Number of indexed documents.
    // lint: no-span — trivial accessor
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// `true` when nothing is indexed.
    // lint: no-span — trivial accessor
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Number of distinct terms in the dictionary.
    // lint: no-span — trivial accessor
    pub fn vocab_size(&self) -> usize {
        self.terms.len()
    }

    /// Whether `doc` is indexed.
    // lint: no-span — trivial accessor
    pub fn contains(&self, doc: u64) -> bool {
        self.doc_len.contains_key(&doc)
    }

    /// The scoring parameters.
    // lint: no-span — trivial accessor
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// (Re-)indexes `doc` from its fielded text. An existing document
    /// with the same id is replaced atomically from the caller's view —
    /// this is the `CardUpdated` path.
    pub fn insert(&mut self, doc: u64, fields: &[(Field, String)]) {
        let _span = mlake_obs::span("text.insert");
        self.remove(doc);
        let mut counts: BTreeMap<(String, Field), u32> = BTreeMap::new();
        let mut len = 0u32;
        for (field, text) in fields {
            for term in self.tokenizer.tokenize(text) {
                *counts.entry((term, *field)).or_insert(0) += 1;
                len = len.saturating_add(1);
            }
        }
        for ((term, field), tf) in counts {
            let postings = self.terms.entry(term).or_default();
            let at = postings
                .binary_search_by(|p| (p.doc, p.field).cmp(&(doc, field)))
                .unwrap_or_else(|i| i);
            postings.insert(at, Posting { doc, tf, field });
        }
        self.doc_len.insert(doc, len);
        self.total_len += u64::from(len);
    }

    /// Drops `doc` from the index; `true` if it was present.
    pub fn remove(&mut self, doc: u64) -> bool {
        let _span = mlake_obs::span("text.remove");
        let Some(len) = self.doc_len.remove(&doc) else {
            return false;
        };
        self.total_len -= u64::from(len);
        self.terms.retain(|_, postings| {
            postings.retain(|p| p.doc != doc);
            !postings.is_empty()
        });
        true
    }

    /// BM25 top-`k` for a free-text query: scores every document that
    /// shares at least one query term, best first, ties broken on
    /// ascending doc id. Query terms go through the same tokenizer as
    /// documents; duplicates in the query are collapsed.
    ///
    /// Deterministic by construction: terms are visited in sorted order
    /// and postings in `(doc, field)` order, so score accumulation is the
    /// same sequence of float adds on every run and at every thread
    /// count.
    pub fn search(&self, query: &str, k: usize) -> Vec<(u64, f32)> {
        let _span = mlake_obs::span("text.search");
        let n = self.doc_len.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let query_terms: std::collections::BTreeSet<String> =
            self.tokenizer.tokenize(query).into_iter().collect();
        let avgdl = (self.total_len as f32 / n as f32).max(1.0);
        let Bm25Params { k1, b } = self.params;
        let mut scores: BTreeMap<u64, f32> = BTreeMap::new();
        for term in &query_terms {
            let Some(postings) = self.terms.get(term) else {
                continue;
            };
            // Postings are sorted by (doc, field): fold consecutive
            // same-doc runs into one weighted term frequency.
            let df = {
                let mut df = 0usize;
                let mut last = None;
                for p in postings {
                    if last != Some(p.doc) {
                        df += 1;
                        last = Some(p.doc);
                    }
                }
                df
            };
            let idf = (((n as f32 - df as f32 + 0.5) / (df as f32 + 0.5)) + 1.0).ln();
            let mut i = 0usize;
            while i < postings.len() {
                let doc = postings[i].doc;
                let mut wtf = 0.0f32;
                while i < postings.len() && postings[i].doc == doc {
                    wtf += postings[i].field.weight() * postings[i].tf as f32;
                    i += 1;
                }
                let dl = self.doc_len.get(&doc).copied().unwrap_or(0) as f32;
                let norm = k1 * (1.0 - b + b * dl / avgdl);
                *scores.entry(doc).or_insert(0.0) += idf * (wtf * (k1 + 1.0)) / (wtf + norm);
            }
        }
        let mut ranked: Vec<(u64, f32)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(index: &mut TextIndex, id: u64, name: &str, notes: &str) {
        index.insert(
            id,
            &[
                (Field::Name, name.to_string()),
                (Field::Notes, notes.to_string()),
            ],
        );
    }

    #[test]
    fn exact_term_ranks_matching_doc_first() {
        let mut idx = TextIndex::default();
        doc(&mut idx, 0, "legal-base", "trained for legal contracts");
        doc(&mut idx, 1, "medical-base", "trained for medical triage");
        doc(&mut idx, 2, "news-lm", "summarizes news articles");
        let hits = idx.search("medical", 10);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits.len(), 1);
        let hits = idx.search("trained", 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn name_field_outweighs_notes() {
        let mut idx = TextIndex::default();
        doc(&mut idx, 0, "quant", "nothing here");
        doc(&mut idx, 1, "other", "quant quant mentioned only as body text");
        let hits = idx.search("quant", 10);
        // Name weight 3 vs notes tf 2 at weight 1: the name doc wins.
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn tie_breaks_on_ascending_doc_id() {
        let mut idx = TextIndex::default();
        doc(&mut idx, 7, "alpha", "same text body");
        doc(&mut idx, 3, "alpha", "same text body");
        let hits = idx.search("alpha", 10);
        assert_eq!(hits[0].0, 3);
        assert_eq!(hits[1].0, 7);
        assert_eq!(hits[0].1, hits[1].1);
    }

    #[test]
    fn empty_doc_and_empty_query() {
        let mut idx = TextIndex::default();
        idx.insert(0, &[]);
        idx.insert(1, &[(Field::Notes, "!!! ...".to_string())]);
        assert_eq!(idx.doc_count(), 2);
        assert!(idx.search("anything", 10).is_empty());
        assert!(idx.search("", 10).is_empty());
        assert!(idx.search("...", 10).is_empty());
        // k = 0 and empty index both short-circuit.
        doc(&mut idx, 2, "x", "y");
        assert!(idx.search("x", 0).is_empty());
        assert!(TextIndex::default().search("x", 5).is_empty());
    }

    #[test]
    fn reinsert_replaces_old_postings() {
        let mut idx = TextIndex::default();
        doc(&mut idx, 0, "legal-base", "first draft");
        assert_eq!(idx.search("draft", 10).len(), 1);
        doc(&mut idx, 0, "legal-base", "final text");
        assert!(idx.search("draft", 10).is_empty());
        assert_eq!(idx.search("final", 10).len(), 1);
        assert_eq!(idx.doc_count(), 1);
    }

    #[test]
    fn remove_purges_dictionary() {
        let mut idx = TextIndex::default();
        doc(&mut idx, 0, "solo", "unique-term-here");
        assert!(idx.vocab_size() > 0);
        assert!(idx.remove(0));
        assert!(!idx.remove(0));
        assert_eq!(idx.vocab_size(), 0);
        assert!(idx.is_empty());
        assert!(!idx.contains(0));
    }

    #[test]
    fn multi_term_query_accumulates() {
        let mut idx = TextIndex::default();
        doc(&mut idx, 0, "a", "legal contracts europe");
        doc(&mut idx, 1, "b", "legal contracts");
        doc(&mut idx, 2, "c", "legal");
        let hits = idx.search("legal contracts europe", 10);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits.len(), 3);
        assert!(hits[0].1 > hits[1].1 && hits[1].1 > hits[2].1);
    }

    #[test]
    fn serde_round_trip_preserves_results_bit_identically() {
        let mut idx = TextIndex::default();
        for i in 0..20u64 {
            doc(
                &mut idx,
                i,
                &format!("model-{i}"),
                &format!("family f{} depth {} vocabulary word{}", i % 4, i % 3, i % 4),
            );
        }
        let json = serde_json::to_string(&idx).expect("encode");
        let back: TextIndex = serde_json::from_str(&json).expect("decode");
        assert_eq!(idx, back);
        for q in ["family f1", "word3 depth 2", "model-7"] {
            let a = idx.search(q, 10);
            let b = back.search(q, 10);
            assert_eq!(a, b, "query '{q}' differs after round-trip");
            for ((d0, s0), (d1, s1)) in a.iter().zip(&b) {
                assert_eq!(d0, d1);
                assert_eq!(s0.to_bits(), s1.to_bits(), "score bits differ");
            }
        }
    }

    #[test]
    fn insertion_order_does_not_change_results() {
        let fields = |i: u64| {
            vec![
                (Field::Name, format!("m{i}")),
                (Field::Notes, format!("shared tokens plus t{}", i % 5)),
            ]
        };
        let mut a = TextIndex::default();
        for i in 0..12u64 {
            a.insert(i, &fields(i));
        }
        let mut b = TextIndex::default();
        for i in (0..12u64).rev() {
            b.insert(i, &fields(i));
        }
        assert_eq!(a, b);
        assert_eq!(a.search("shared t3", 10), b.search("shared t3", 10));
    }
}
