//! Unicode-safe word tokenizer.
//!
//! Terms are maximal runs of alphanumeric characters (per
//! [`char::is_alphanumeric`], so CJK ideographs, accented letters and
//! digits all count), lowercased via the full unicode mapping. Everything
//! else — punctuation, whitespace, emoji — separates terms. Stopwords are
//! dropped after lowercasing; terms longer than the configured cap are
//! truncated (not dropped) so pathological inputs still index under a
//! stable prefix.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Default cap on term length, in characters. Long enough for every real
/// identifier in a card; short enough that a megabyte of base64 in a
/// notes field cannot bloat the dictionary.
pub const MAX_TERM_CHARS: usize = 32;

/// The default stopword list: high-frequency English glue that appears in
/// generated card prose and carries no retrieval signal.
pub fn default_stopwords() -> BTreeSet<String> {
    [
        "a", "an", "and", "as", "at", "by", "for", "from", "in", "is", "it", "of", "on", "or",
        "the", "to", "with",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

/// Configurable tokenizer shared by indexing and query parsing (both
/// sides must agree or a query could never match a document).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tokenizer {
    /// Lowercased terms to drop.
    stopwords: BTreeSet<String>,
    /// Maximum term length in characters; longer terms are truncated.
    max_term_chars: usize,
}

impl Default for Tokenizer {
    fn default() -> Tokenizer {
        Tokenizer {
            stopwords: default_stopwords(),
            max_term_chars: MAX_TERM_CHARS,
        }
    }
}

impl Tokenizer {
    /// A tokenizer with a custom stopword list and term-length cap
    /// (`max_term_chars` of 0 means "no cap").
    pub fn new(stopwords: BTreeSet<String>, max_term_chars: usize) -> Tokenizer {
        Tokenizer {
            stopwords,
            max_term_chars,
        }
    }

    /// Splits `text` into lowercase terms, dropping stopwords and
    /// truncating overlong terms. Order and multiplicity are preserved —
    /// the index needs term frequencies.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut term = String::new();
        let mut chars = 0usize;
        for c in text.chars() {
            if c.is_alphanumeric() {
                if self.max_term_chars == 0 || chars < self.max_term_chars {
                    term.extend(c.to_lowercase());
                }
                chars += 1;
            } else if !term.is_empty() {
                self.flush(&mut term, &mut out);
                chars = 0;
            }
        }
        if !term.is_empty() {
            self.flush(&mut term, &mut out);
        }
        out
    }

    fn flush(&self, term: &mut String, out: &mut Vec<String>) {
        if !self.stopwords.contains(term.as_str()) {
            out.push(std::mem::take(term));
        } else {
            term.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<String> {
        Tokenizer::default().tokenize(text)
    }

    #[test]
    fn basic_split_and_lowercase() {
        assert_eq!(toks("Legal-MLP16 base, f0!"), vec!["legal", "mlp16", "base", "f0"]);
    }

    #[test]
    fn stopwords_dropped() {
        assert_eq!(toks("the model of a lake"), vec!["model", "lake"]);
    }

    #[test]
    fn empty_and_punctuation_only_inputs() {
        assert!(toks("").is_empty());
        assert!(toks("  \t\n ").is_empty());
        assert!(toks("!!! --- ... ???").is_empty());
    }

    #[test]
    fn unicode_terms_survive() {
        assert_eq!(toks("Modèle Überläufer 模型"), vec!["modèle", "überläufer", "模型"]);
        // Emoji are separators, not term characters.
        assert_eq!(toks("fast🚀model"), vec!["fast", "model"]);
    }

    #[test]
    fn very_long_terms_truncate_to_stable_prefix() {
        let long = "x".repeat(10_000);
        let t = toks(&long);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].chars().count(), MAX_TERM_CHARS);
        // The same overlong term always truncates identically.
        assert_eq!(toks(&long), toks(&"x".repeat(9_999)));
    }

    #[test]
    fn uncapped_tokenizer_keeps_full_terms() {
        let t = Tokenizer::new(BTreeSet::new(), 0);
        let long = "y".repeat(100);
        assert_eq!(t.tokenize(&long)[0].chars().count(), 100);
        // Empty stopword list keeps glue words.
        assert_eq!(t.tokenize("the model"), vec!["the", "model"]);
    }

    #[test]
    fn multiplicity_preserved() {
        assert_eq!(toks("legal legal legal"), vec!["legal"; 3]);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tokenizer::default();
        let json = serde_json::to_string(&t).expect("encode");
        let back: Tokenizer = serde_json::from_str(&json).expect("decode");
        assert_eq!(t, back);
    }
}
