#!/usr/bin/env bash
# CI gate for the Model Lakes workspace.
#
#   scripts/ci.sh          # tier-1 + full workspace tests + determinism + clippy
#   scripts/ci.sh --quick  # tier-1 only
#
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`; everything
# after it widens coverage: the full workspace test suite, the parallel-vs-
# serial equivalence suites re-run under MLAKE_THREADS=1 (exercising the env
# override path end-to-end), and clippy with warnings denied on the crates
# the parallel execution layer touches.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "tier-1: cargo build --release"
cargo build --release

step "tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
  echo "quick mode: skipping workspace tests, determinism re-run, clippy"
  exit 0
fi

step "workspace tests"
cargo test --workspace -q

step "determinism: equivalence suites under MLAKE_THREADS=1"
MLAKE_THREADS=1 cargo test -q -p mlake-tensor --test parallel_equivalence
MLAKE_THREADS=1 cargo test -q -p mlake-index hnsw
MLAKE_THREADS=1 cargo test -q -p mlake-par

step "clippy -D warnings (parallel-layer crates)"
cargo clippy -q -p mlake-par -p mlake-tensor -p mlake-index \
  -p mlake-fingerprint -p mlake-datagen -p mlake-bench -- -D warnings

echo
echo "ci: all green"
