#!/usr/bin/env bash
# CI gate for the Model Lakes workspace.
#
#   scripts/ci.sh          # tier-1 + full workspace tests + determinism + clippy
#   scripts/ci.sh --quick  # tier-1 only
#
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`; everything
# after it widens coverage: the mlake-lint static-analysis gate (also run in
# --quick mode — it is cheap and catches new debt earliest; the per-file
# passes plus the whole-program lock-cycle / transitive-panic /
# blocking-under-lock passes, writing the machine-readable report to
# target/lint/ and proving on a seeded fixture that an inverted lock
# acquisition fails the run), the full
# workspace test suite, a debug-profile par/index run (exercising the
# lock-order race detector, which compiles out in release), the same suite
# re-run with observability disabled (MLAKE_OBS=off must be behaviorally
# inert), the parallel-vs-serial equivalence suites re-run under
# MLAKE_THREADS=1 (exercising the env override path end-to-end, including
# sharded scatter-gather determinism), the SQ8 recall gate in both
# observability modes, the WAL crash-recovery matrix
# (kill-at-every-write/fsync sweep, again in both observability modes), a
# the serving stage (the end-to-end HTTP hammer — concurrent mixed load,
# deliberate backpressure, graceful shutdown + reopen — in both
# observability modes; the sweep now also kills at every remove_file of a
# GC pass), the blockstore suite (lazy residency, orphan-blob GC, manifest
# v1/v2 back-compat — in both observability modes), a performance guard
# covering the tiled matmul,
# the quantized flat scan, the sharded scatter-gather merge, WAL append
# throughput, the lazy-vs-eager open ratio with its absolute budget, the
# size-independent delta-persist check, the HTTP closed-loop serving
# floor and the text/hybrid retrieval gate (BM25 batch budget + the
# hybrid-recall fusion bar) — run in both
# observability modes, budgets overridable via MLAKE_BENCH_GUARD_MS /
# MLAKE_BENCH_GUARD_SQ8_MS / MLAKE_BENCH_GUARD_SQ8_RATIO /
# MLAKE_BENCH_GUARD_SHARD_OPS / MLAKE_BENCH_GUARD_WAL_OPS /
# MLAKE_BENCH_GUARD_HTTP_OPS / MLAKE_BENCH_GUARD_HTTP_P99_MS /
# MLAKE_BENCH_GUARD_OPEN_MS / MLAKE_BENCH_GUARD_OPEN_RATIO /
# MLAKE_BENCH_GUARD_TEXT_MS — and clippy
# with warnings denied across the crates the parallel, observability and
# serving layers touch. The text stage runs the mlake-text unit suite and
# the core text_search integration suite (persist/replay determinism,
# citation-contract regression) in both observability modes.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "tier-1: cargo build --release"
cargo build --release

step "tier-1: cargo test -q"
cargo test -q

step "lint: mlake-lint over crates/ and src/ (lint.allow baseline; json artifact)"
mkdir -p target/lint
cargo run -q -p mlake-lint --release -- --json target/lint/report.json crates src

step "lint: seeded lock-order inversion must fail the lock-cycle pass"
fixture="$(mktemp -d)"
trap 'rm -rf "$fixture"' EXIT
mkdir -p "$fixture/crates/fix/src"
cat > "$fixture/crates/fix/Cargo.toml" <<'EOF'
[package]
name = "mlake-fix"
EOF
cat > "$fixture/crates/fix/src/lib.rs" <<'EOF'
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn inverted(&self) -> u32 {
        // lock-order: 20 (fix.b)
        let b = self.b.lock().unwrap_or_else(|e| e.into_inner());
        // lock-order: 10 (fix.a)
        let a = self.a.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }
}
EOF
lint_bin="$(pwd)/target/release/mlake-lint"
if out="$(cd "$fixture" && "$lint_bin" --no-baseline crates 2>&1)"; then
  echo "fixture with inverted lock order unexpectedly passed mlake-lint:"
  echo "$out"
  exit 1
fi
echo "$out" | grep -q 'lock-cycle' || {
  echo "expected a lock-cycle finding on the seeded inversion, got:"
  echo "$out"
  exit 1
}
echo "seeded inversion correctly rejected"

if [[ "${1:-}" == "--quick" ]]; then
  echo "quick mode: skipping workspace tests, determinism re-run, clippy"
  exit 0
fi

step "workspace tests"
cargo test --workspace -q

step "lock-order race detector: debug-profile par/index tests"
cargo test -q -p mlake-par -p mlake-index

step "observability off: tier-1 re-run under MLAKE_OBS=off"
MLAKE_OBS=off cargo test -q
MLAKE_OBS=off cargo run -q -p mlake-lint --release -- --json target/lint/report-obs-off.json crates src

step "determinism: equivalence suites under MLAKE_THREADS=1"
MLAKE_THREADS=1 cargo test -q -p mlake-tensor --test parallel_equivalence
MLAKE_THREADS=1 cargo test -q -p mlake-index hnsw
MLAKE_THREADS=1 cargo test -q -p mlake-index --test sharded_determinism
MLAKE_THREADS=1 cargo test -q -p mlake-par

step "quantized recall gate: sq8 rescore within 5% of f32 (obs on + off)"
cargo test -q -p mlake-index --test quantized --release
MLAKE_OBS=off cargo test -q -p mlake-index --test quantized --release

step "crash recovery: kill-at-every-write/fsync/remove sweep (obs on + off)"
cargo test -q -p mlake-core --test crash_recovery --release
MLAKE_OBS=off cargo test -q -p mlake-core --test crash_recovery --release

step "blockstore: lazy residency + refcounting GC (obs on + off)"
cargo test -q -p mlake-core --test residency --test manifest_compat --release
MLAKE_OBS=off cargo test -q -p mlake-core --test residency --test manifest_compat --release

step "serve: end-to-end HTTP hammer over TCP (obs on + off)"
cargo test -q -p mlake-server --test hammer --release
MLAKE_OBS=off cargo test -q -p mlake-server --test hammer --release

step "text: BM25 / hybrid retrieval suites (obs on + off)"
cargo test -q -p mlake-text --release
MLAKE_OBS=off cargo test -q -p mlake-text --release
cargo test -q -p mlake-core --test text_search --release
MLAKE_OBS=off cargo test -q -p mlake-core --test text_search --release

step "bench guard: matmul + sq8 + sharded + wal + blockstore open/persist + http + text (obs on + off)"
cargo run -q -p mlake-bench --bin bench_guard --release
MLAKE_OBS=off cargo run -q -p mlake-bench --bin bench_guard --release

step "clippy -D warnings (parallel + observability + serving crates)"
cargo clippy -q -p mlake-par -p mlake-tensor -p mlake-index \
  -p mlake-fingerprint -p mlake-datagen -p mlake-bench \
  -p mlake-obs -p mlake-core -p mlake-query -p mlake-lint \
  -p mlake-wal -p mlake-proto -p mlake-server -p mlake-load \
  -p mlake-text -- -D warnings

echo
echo "ci: all green"
