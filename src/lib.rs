//! Umbrella crate re-exporting the whole Model Lakes workspace.
pub use mlake_attribution as attribution;
pub use mlake_benchlab as benchlab;
pub use mlake_cards as cards;
pub use mlake_core as core;
pub use mlake_datagen as datagen;
pub use mlake_fingerprint as fingerprint;
pub use mlake_index as index;
pub use mlake_nn as nn;
pub use mlake_proto as proto;
pub use mlake_query as query;
pub use mlake_server as server;
pub use mlake_tensor as tensor;
pub use mlake_versioning as versioning;
