#![allow(clippy::all)] // vendored stand-in: keep diff-light, lint the real crates instead
//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use, with a deterministic per-test RNG (seeded from the test-name
//! hash) and a fixed case count. No shrinking: a failing case panics with
//! the assertion message; re-running reproduces it exactly because the RNG
//! is deterministic.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`proptest::test_runner::Config` shape).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trades a few cases for
        // CI latency while keeping enough to exercise edge geometry.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a label (the test name) so every property has its own
    /// deterministic stream.
    pub fn deterministic(label: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)` (`hi > lo`).
    pub fn below(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// A value generator (`proptest::strategy::Strategy` shape).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.gen(rng)),
        }
    }
}

/// String strategy from a regex-subset pattern (`proptest`'s `&str`
/// strategy shape). Supports sequences of atoms, where an atom is a
/// literal char, `.` (any printable), or a `[...]` class with ranges and
/// literals (trailing `-` literal), optionally repeated with `{n}`,
/// `{m,n}`, `*` (0..=32) or `+` (1..=32).
impl Strategy for &str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        #[derive(Clone)]
        enum Atom {
            Any,
            Class(Vec<char>),
            Lit(char),
        }
        let printable: Vec<char> = (32u8..127).map(char::from).collect();
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut class = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if chars[i] == '\\' && i + 1 < chars.len() {
                            class.push(chars[i + 1]);
                            i += 2;
                        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']'
                        {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in pattern {self:?}");
                            for c in lo..=hi {
                                class.push(c);
                            }
                            i += 3;
                        } else {
                            class.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len() && !class.is_empty(),
                        "unterminated or empty class in pattern {self:?}"
                    );
                    i += 1; // ']'
                    Atom::Class(class)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Lit(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .expect("unterminated {} in pattern");
                let body: String = chars[i + 1..end].iter().collect();
                i = end + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repeat lower bound"),
                        b.trim().parse::<usize>().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 32)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 32)
            } else {
                (1, 1)
            };
            let n = if hi > lo {
                lo + (rng.next_u64() as usize % (hi - lo + 1))
            } else {
                lo
            };
            for _ in 0..n {
                match &atom {
                    Atom::Any => out.push(printable[rng.next_u64() as usize % printable.len()]),
                    Atom::Class(class) => {
                        out.push(class[rng.next_u64() as usize % class.len()]);
                    }
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Type-erased strategy (`Rc`-shared generator closure).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- Range strategies ------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.below(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.below(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// --- Tuple strategies ------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
);

// --- Arbitrary / any -------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, wide-range values; property tests that need NaN ask for it.
        ((rng.next_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// --- Collections -----------------------------------------------------------

/// Collection strategies (`proptest::collection` shape).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy over an element strategy and a size range.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.gen(rng)).collect()
        }
    }
}

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            return self.lo;
        }
        rng.below(self.lo as i128, self.hi as i128 + 1) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

// --- Option ----------------------------------------------------------------

/// Option strategies (`proptest::option` shape).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `Some` ~80% of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 5 == 0 {
                None
            } else {
                Some(self.inner.gen(rng))
            }
        }
    }
}

/// Test-runner module shape (`proptest::test_runner::Config`).
pub mod test_runner {
    pub use crate::ProptestConfig as Config;
}

/// The common imports (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
    /// Re-export of the crate for `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
}

// --- Macros ----------------------------------------------------------------

/// Asserts a condition inside a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { ::std::assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $( let $pat = $crate::Strategy::gen(&($strat), &mut __rng); )+
                $body
            }
        }
    )*};
}

/// Chooses among strategies (`prop_oneof!` subset: equal weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options = ::std::vec![$( $crate::Strategy::boxed($crate::Strategy::prop_map($strat, |v| v)) ),+];
        $crate::OneOf { options }
    }};
}

/// Strategy produced by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The equally-weighted alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].gen(rng)
    }
}

impl<T> fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneOf({} options)", self.options.len())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (1..=8usize).gen(&mut rng);
            assert!((1..=8).contains(&v));
            let f = (-2.0f32..3.0).gen(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let neg = (-5i32..-1).gen(&mut rng);
            assert!((-5..-1).contains(&neg));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_composes((r, v) in (1..=4usize, 1..=4usize).prop_flat_map(|(r, c)| {
            crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, v))
        })) {
            prop_assert!(r >= 1);
            prop_assert_eq!(v.len() % r, 0);
        }
    }
}
