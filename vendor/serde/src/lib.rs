#![allow(clippy::all)] // vendored stand-in: keep diff-light, lint the real crates instead
//! Offline stand-in for the `serde` crate.
//!
//! The build container cannot reach crates.io, so this vendored shim
//! implements the serde surface the workspace actually uses — derived
//! `Serialize`/`Deserialize` on structs and enums, round-tripped through
//! JSON by the sibling `serde_json` shim.
//!
//! Instead of serde's visitor architecture, values convert to and from a
//! small JSON-shaped [`Content`] tree. `serde_json` then renders/parses
//! that tree. The derive macros (in the vendored `serde_derive`) generate
//! `to_content`/`from_content` impls with serde's standard external enum
//! representation and `#[serde(default)]` support.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped serialization tree: the data model every `Serialize` type
/// lowers into and every `Deserialize` type is rebuilt from.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any in-range signed value).
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers (non-finite values render as `null`).
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Content>),
    /// Objects, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up a field by key in a map's entries (first match wins).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a caller-provided message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError { msg: msg.to_string() }
    }

    /// A "missing required field" error.
    pub fn missing_field(field: &str) -> DeError {
        DeError {
            msg: format!("missing field `{field}`"),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &'static str, got: &Content) -> DeError {
        DeError {
            msg: format!("expected {what}, got {}", got.kind()),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into [`Content`].
pub trait Serialize {
    /// Converts `self` into the content tree.
    fn to_content(&self) -> Content;
}

/// A type that can be rebuilt from [`Content`].
///
/// The lifetime parameter mirrors serde's signature so that derived code
/// and bounds written against real serde keep compiling; this shim only
/// supports owned deserialization.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds a value from the content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Called for a struct field absent from the input. Errors by default;
    /// `Option` overrides this to yield `None` (matching serde).
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

/// Owned deserialization bound (mirrors `serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// `serde::ser` module shape.
pub mod ser {
    pub use crate::Serialize;
}

/// `serde::de` module shape.
pub mod de {
    pub use crate::{DeError, Deserialize, DeserializeOwned};
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => v as u64,
                    _ => return Err(DeError::expected("unsigned integer", c)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(format!(
                    "integer {v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => v as i64,
                    _ => return Err(DeError::expected("integer", c)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(format!(
                    "integer {v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    // Non-finite floats serialize to null (JSON has no inf/NaN).
                    Content::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("float", c)),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", c)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", c)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", c)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl<'de> Deserialize<'de> for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            _ => Err(DeError::expected("null", c)),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::expected("tuple sequence", c))?;
                let expected = [$($idx,)+].len();
                if s.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}", s.len()
                    )));
                }
                Ok(($($name::from_content(&s[$idx])?,)+))
            }
        }
    )+};
}
ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Map keys must render as JSON object keys; strings and integers qualify.
pub trait ContentKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl ContentKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_content_key {
    ($($t:ty),*) => {$(
        impl ContentKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::custom(format!(
                    "bad integer map key `{key}`"
                )))
            }
        }
    )*};
}
int_content_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: ContentKey, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}
impl<'de, K: ContentKey + Eq + Hash, V: Deserialize<'de>, S: BuildHasher + Default> Deserialize<'de>
    for HashMap<K, V, S>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: ContentKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}
impl<'de, K: ContentKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de> + Eq + Hash, S: BuildHasher + Default> Deserialize<'de>
    for HashSet<T, S>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            ("nanos".to_string(), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}
impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c.as_map().ok_or_else(|| DeError::expected("duration map", c))?;
        let secs = u64::from_content(
            content_get(m, "secs").ok_or_else(|| DeError::missing_field("secs"))?,
        )?;
        let nanos = u32::from_content(
            content_get(m, "nanos").ok_or_else(|| DeError::missing_field("nanos"))?,
        )?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_missing_field_yields_none() {
        assert_eq!(Option::<u32>::from_missing("x").unwrap(), None);
        assert!(u32::from_missing("x").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert_eq!(BTreeMap::from_content(&m.to_content()).unwrap(), m);
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_content(&t.to_content()).unwrap(), t);
    }
}
