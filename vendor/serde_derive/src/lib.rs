#![allow(clippy::all)] // vendored stand-in: keep diff-light, lint the real crates instead
//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim without `syn`/`quote`: the derive input is parsed
//! directly from the `proc_macro` token stream (structs with named, tuple
//! or no fields; enums with unit/tuple/struct variants; no generics), and
//! the generated impls are emitted as source text.
//!
//! Supported field attribute: `#[serde(default)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    default: bool,
}

/// The shape of a derive input.
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: Shape,
}

/// Parsed derive input.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde shim: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde shim: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes and visibility.
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde shim: unexpected struct body {other:?}"),
            };
            Input { name, kind: Kind::Struct(shape) }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim: unexpected enum body {other:?}"),
            };
            Input { name, kind: Kind::Enum(parse_variants(body)) }
        }
        other => panic!("serde shim: cannot derive for `{other}`"),
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    // Returns whether any skipped attribute was `#[serde(default)]`.
    let mut has_default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if attr_is_serde_default(g.stream()) {
                has_default = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    has_default
}

fn attr_is_serde_default(attr: TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim: expected identifier, got {other:?}"),
    }
}

/// Skips tokens until a top-level `,` (angle-bracket depth aware); consumes
/// the comma. Used to skip types and discriminants we never inspect.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                // `->` return arrows must not count their '>' as a close.
                if c == '-'
                    && matches!(tokens.get(*i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>')
                {
                    *i += 2;
                    continue;
                }
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth -= 1;
                } else if c == ',' && depth == 0 {
                    *i += 1;
                    return;
                }
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Each segment may start with attrs/visibility; skip, then skip the type.
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Optional discriminant, then the separating comma.
        skip_until_comma(&tokens, &mut i);
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_content(&{p}{n}))",
                n = f.name,
                p = access_prefix
            )
        })
        .collect();
    format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
}

fn de_named_fields(fields: &[Field], map_var: &str) -> String {
    // Field initializers for a struct literal, reading from `map_var`.
    fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("<_ as ::serde::Deserialize>::from_missing(\"{}\")?", f.name)
            };
            format!(
                "{n}: match ::serde::content_get({m}, \"{n}\") {{ \
                   ::std::option::Option::Some(v) => <_ as ::serde::Deserialize>::from_content(v)?, \
                   ::std::option::Option::None => {missing}, \
                 }},",
                n = f.name,
                m = map_var
            )
        })
        .collect()
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => ser_named_fields(fields, "self."),
        Kind::Struct(Shape::Tuple(1)) => {
            // Newtype structs serialize transparently, matching serde.
            "::serde::Serialize::to_content(&self.0)".to_string()
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Unit) => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Content::Map(::std::vec![(\
                               ::std::string::String::from(\"{vn}\"), \
                               ::serde::Serialize::to_content(x0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Content::Map(::std::vec![(\
                                   ::std::string::String::from(\"{vn}\"), \
                                   ::serde::Content::Seq(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{n}\"), \
                                         ::serde::Serialize::to_content({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                                   ::std::string::String::from(\"{vn}\"), \
                                   ::serde::Content::Map(::std::vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let inits = de_named_fields(fields, "m");
            format!(
                "let m = match c {{ \
                     ::serde::Content::Map(m) => m, \
                     _ => return ::std::result::Result::Err(::serde::DeError::expected(\"map for struct {name}\", c)), \
                 }};\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::Struct(Shape::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(<_ as ::serde::Deserialize>::from_content(c)?))"
        ),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("<_ as ::serde::Deserialize>::from_content(&s[{i}])?"))
                .collect();
            format!(
                "let s = match c {{ \
                     ::serde::Content::Seq(s) if s.len() == {n} => s, \
                     _ => return ::std::result::Result::Err(::serde::DeError::expected(\"sequence of {n} for tuple struct {name}\", c)), \
                 }};\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                               <_ as ::serde::Deserialize>::from_content(v)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("<_ as ::serde::Deserialize>::from_content(&s[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                   let s = match v {{ \
                                       ::serde::Content::Seq(s) if s.len() == {n} => s, \
                                       _ => return ::std::result::Result::Err(::serde::DeError::expected(\"sequence of {n} for variant {vn}\", v)), \
                                   }}; \
                                   ::std::result::Result::Ok({name}::{vn}({items})) \
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits = de_named_fields(fields, "mm");
                            Some(format!(
                                "\"{vn}\" => {{ \
                                   let mm = match v {{ \
                                       ::serde::Content::Map(mm) => mm, \
                                       _ => return ::std::result::Result::Err(::serde::DeError::expected(\"map for variant {vn}\", v)), \
                                   }}; \
                                   ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) \
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match c {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown unit variant `{{other}}` for enum {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                         let (k, v) = &m[0];\n\
                         match k.as_str() {{\n\
                             {datas}\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", c)),\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
