#![allow(clippy::all)] // vendored stand-in: keep diff-light, lint the real crates instead
//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `BenchmarkId`, `BatchSize`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock measurement
//! loop (warm-up, then timed samples; median and mean reported to stdout).
//!
//! Tuning via environment:
//! * `MLAKE_BENCH_MS` — target measurement time per benchmark in ms
//!   (default 300).
//! * a positional CLI argument filters benchmarks by substring, matching
//!   `cargo bench -- <filter>`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (shape-compatible; the shim
/// times the routine per batch element either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Declared throughput for a benchmark (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement driver passed to bench closures.
pub struct Bencher {
    target: Duration,
    /// Measured mean time per iteration.
    mean: Duration,
    /// Measured median time per iteration (across samples).
    median: Duration,
    iters: u64,
}

impl Bencher {
    fn new(target: Duration) -> Bencher {
        Bencher {
            target,
            mean: Duration::ZERO,
            median: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes a
        // measurable slice, then scale to the target measurement time.
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            ((self.target.as_nanos() / 8).max(1) / first.as_nanos().max(1)).clamp(1, 1_000_000)
                as u64;

        let mut samples: Vec<f64> = Vec::new();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.target && samples.len() < 64 {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let dt = t.elapsed();
            samples.push(dt.as_secs_f64() / per_sample as f64);
            total += dt;
            iters += per_sample;
        }
        self.finish_samples(samples, iters);
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is on
    /// the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples: Vec<f64> = Vec::new();
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while measured < self.target && samples.len() < 10_000 {
            // Bound total wall time (setup included) to 4x the target.
            if wall.elapsed() > self.target * 4 {
                break;
            }
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            samples.push(dt.as_secs_f64());
            measured += dt;
            iters += 1;
        }
        self.finish_samples(samples, iters);
    }

    /// `iter_batched` variant receiving `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }

    fn finish_samples(&mut self, mut samples: Vec<f64>, iters: u64) {
        if samples.is_empty() {
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.median = Duration::from_secs_f64(median);
        self.mean = Duration::from_secs_f64(mean.max(0.0));
        self.iters = iters;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark manager (`criterion::Criterion` shape).
pub struct Criterion {
    filter: Option<String>,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        let ms = std::env::var("MLAKE_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            filter,
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// CLI-args hook (the shim already reads args in `default`).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Overrides measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.target = d;
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
        if !self.enabled(name) {
            return;
        }
        let mut b = Bencher::new(self.target);
        f(&mut b);
        let mut line = format!(
            "{name:<56} time: [{} (median), {} (mean), {} samples-iters]",
            fmt_duration(b.median),
            fmt_duration(b.mean),
            b.iters
        );
        if let Some(tp) = throughput {
            let per_sec = |n: u64| n as f64 / b.median.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" thrpt: {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!(" thrpt: {:.2} Kelem/s", per_sec(n) / 1e3));
                }
            }
        }
        println!("{line}");
    }

    /// Benchmarks a single function.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Criterion {
        let name = id.to_string();
        self.run_one(&name, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint (accepted for API compatibility; the shim's loop is
    /// time-bounded).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time override for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.target = d;
        self
    }

    /// Declares throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let tp = self.throughput;
        self.criterion.run_one(&name, tp, f);
        self
    }

    /// Benchmarks a function with a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let tp = self.throughput;
        self.criterion.run_one(&name, tp, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(20));
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.mean > Duration::ZERO);
        assert!(b.iters > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(
            || vec![1u8; 1024],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("hnsw", 1000).to_string(), "hnsw/1000");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
