#![allow(clippy::all)] // vendored stand-in: keep diff-light, lint the real crates instead
//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON against the vendored serde shim's
//! [`serde::Content`] tree. Supports the workspace's API surface:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`to_vec_pretty`],
//! [`from_str`], [`from_slice`], plus a [`Value`] alias for generic trees.
//!
//! Numbers: integers are emitted and parsed exactly (i64/u64); floats use
//! Rust's shortest round-trip formatting; non-finite floats render as
//! `null` (as real serde_json does).

use serde::{Content, DeserializeOwned, Serialize};
use std::fmt;

/// A parsed JSON tree (the shim's content tree directly).
pub type Value = Content;

/// JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let content = parse(s)?;
    T::from_content(&content).map_err(Error::from)
}

/// Parses a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's Display gives the shortest round-trip form; ensure a
                // decimal point or exponent so it reads back as a float.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a content tree.
pub fn parse(s: &str) -> Result<Content> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("truncated surrogate"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error::new("bad surrogate"))?,
                                    16,
                                )
                                .map_err(|_| Error::new("bad surrogate"))?;
                                self.pos += 4;
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}` at offset {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn float_precision_round_trips() {
        for &x in &[0.1f32, 1e-8, 3.402_823_5e38, -2.718_281_8] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "{s}");
        }
        for &x in &[0.1f64, 1e-300, std::f64::consts::PI] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
        // u64 beyond 2^53 must stay exact.
        let big = u64::MAX - 1;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn nested_and_pretty() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
        assert_eq!(from_str::<Option<f32>>("null").unwrap(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("tru").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
