#![allow(clippy::all)] // vendored stand-in: keep diff-light, lint the real crates instead
//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so this vendored
//! shim provides the (small) `parking_lot` API surface the workspace uses,
//! backed by `std::sync` primitives. Semantics follow `parking_lot` rather
//! than `std`: lock methods return guards directly (no `Result`), and a
//! poisoned lock is recovered transparently instead of propagating the
//! poison (the panic that poisoned it already unwound through the caller).

use std::fmt;
use std::sync::TryLockError;

/// Mutual exclusion primitive (`parking_lot::Mutex` API, `std` backing).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader–writer lock (`parking_lot::RwLock` API, `std` backing).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Condition variable (`parking_lot::Condvar`-shaped, `std` backing).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free dance: std's wait consumes and returns the guard.
        take_mut(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Replaces `*dest` through a by-value transform, aborting on panic (the
/// transform here is a condvar wait, which does not panic).
fn take_mut<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = Abort;
        let old = std::ptr::read(dest);
        let new = f(old);
        std::ptr::write(dest, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
