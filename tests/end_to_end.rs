//! Workspace-level end-to-end test: the full Figure 2 pipeline through the
//! umbrella crate — generate → ingest → index → recover → benchmark →
//! document → verify → audit → cite → query.

use model_lakes::cards::corrupt::{corrupt_card, CardCorruption};
use model_lakes::core::lake::{LakeConfig, ModelLake};
use model_lakes::core::populate::{honest_card, populate_from_ground_truth, CardPolicy};
use model_lakes::core::ModelId;
use model_lakes::datagen::{generate_lake, LakeSpec};
use model_lakes::fingerprint::FingerprintKind;

#[test]
fn figure2_pipeline() {
    // Generate and ingest.
    let gt = generate_lake(&LakeSpec::tiny(77));
    let lake = ModelLake::new(LakeConfig::default());
    let ids = populate_from_ground_truth(&lake, &gt, CardPolicy::Honest).unwrap();
    assert_eq!(ids.len(), gt.models.len());

    // Indexer: every model findable via every fingerprint kind.
    for kind in FingerprintKind::ALL {
        let hits = lake.similar(ModelId(0), kind, 3).unwrap();
        assert!(!hits.is_empty(), "{kind:?} search returned nothing");
    }

    // Version graph with known roots.
    let known: Vec<ModelId> = (0..gt.models.len())
        .filter(|&i| gt.models[i].depth == 0)
        .map(|i| ModelId(i as u64))
        .collect();
    let graph = lake.rebuild_version_graph(Some(known)).unwrap();
    assert!(!graph.edges.is_empty());

    // Benchmarking.
    let lb = lake.leaderboard("legal-holdout").unwrap();
    assert!(!lb.rows.is_empty());

    // Documentation generation raises completeness.
    let derived = ModelId(gt.edges[0].child as u64);
    let generated = lake.generate_card(derived).unwrap();
    assert!(generated.completeness() > 0.5);

    // Verification: honest passes, poisoned lineage is contradicted.
    let honest = honest_card(&gt, derived.0 as usize);
    lake.update_card(derived, honest.clone()).unwrap();
    let decoy = gt
        .models
        .iter()
        .map(|m| m.name.as_str())
        .find(|n| Some(*n) != honest.lineage.base_model.as_deref())
        .unwrap()
        .to_string();
    let poisoned = corrupt_card(&honest, CardCorruption::FalseBaseModel, &decoy, "travel");
    let honest_contradictions = lake.verify_model_card(derived).unwrap().contradictions();
    lake.update_card(derived, poisoned).unwrap();
    let poisoned_contradictions = lake.verify_model_card(derived).unwrap().contradictions();
    assert!(
        poisoned_contradictions > honest_contradictions,
        "poisoned {poisoned_contradictions} !> honest {honest_contradictions}"
    );

    // Audit + citation.
    lake.update_card(derived, honest).unwrap();
    let audit = lake.audit_model(derived).unwrap();
    assert!(audit.coverage() > 0.5);
    let citation = lake.cite(derived).unwrap();
    assert!(citation.graph_timestamp > 0);
    assert!(citation.text().contains(&gt.models[derived.0 as usize].name));

    // Declarative query joins everything.
    let hits = lake
        .prepare("FIND MODELS WHERE task = 'classification' ORDER BY score('legal-holdout') DESC LIMIT 5")
        .unwrap()
        .run()
        .unwrap();
    assert!(!hits.is_empty());
}

#[test]
fn umbrella_reexports_cover_all_crates() {
    // The umbrella crate exposes each subsystem under a stable name.
    let _ = model_lakes::tensor::Seed::new(1);
    let _ = model_lakes::nn::Activation::Relu;
    let _ = model_lakes::index::FlatIndex::new();
    let _ = model_lakes::query::parse("FIND MODELS").unwrap();
    let _ = model_lakes::benchlab::LifelongBenchmark::new();
    let _ = model_lakes::cards::ModelCard::skeleton("m", "a");
    let _ = model_lakes::versioning::RecoveryOptions::default();
    let _ = model_lakes::attribution::softmax::SoftmaxConfig::default();
    let _ = model_lakes::fingerprint::FingerprintKind::Hybrid;
    let _ = model_lakes::datagen::Domain::new("legal");
    let _ = model_lakes::core::lake::LakeConfig::default();
}
