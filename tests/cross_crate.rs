//! Cross-crate integration: subsystems consuming each other's outputs in
//! ways no single crate tests — attribution on lake-generated data,
//! weight-space classifiers on lake fingerprints, CKA across lake siblings,
//! index round trips of fingerprint vectors, store persistence of a lake's
//! artifacts.

use model_lakes::attribution::loo::loo_scores;
use model_lakes::attribution::influence::influence_scores;
use model_lakes::attribution::softmax::{SoftmaxConfig, SoftmaxRegression};
use model_lakes::core::hash::sha256;
use model_lakes::core::store::{BlobStore, ResidentStore};
use model_lakes::datagen::{generate_lake, tabular, Domain, LakeSpec};
use model_lakes::fingerprint::cka::linear_cka;
use model_lakes::fingerprint::weightspace::{majority_baseline, PropertyClassifier, WeightSpaceConfig};
use model_lakes::fingerprint::{model_dna, Fingerprinter};
use model_lakes::fingerprint::extrinsic::ProbeSet;
use model_lakes::index::{FlatIndex, HnswConfig, HnswIndex, VectorIndex};
use model_lakes::tensor::{stats, Seed};

#[test]
fn attribution_on_lake_domain_data() {
    // Attribution ground truth must hold on the same synthetic domains the
    // lake's models are trained on.
    let data = tabular::sample_tabular(
        &Domain::new("legal"),
        &tabular::TabularSpec {
            dim: 4,
            num_classes: 2,
            separation: 1.5,
            noise: 0.8,
        },
        20,
        Seed::new(1),
        Seed::new(2),
    );
    let cfg = SoftmaxConfig {
        l2: 0.05,
        steps: 250,
        lr: 0.5,
    };
    let model = SoftmaxRegression::train(&data, &cfg).unwrap();
    let test_x: Vec<f32> = data.x.row(0).to_vec();
    let test_y = data.y[0];
    let loo = loo_scores(&data, &test_x, test_y, &cfg).unwrap();
    let inf = influence_scores(&model, &data, &test_x, test_y, 0.01).unwrap();
    let r = stats::pearson(&loo, &inf).unwrap();
    assert!(r > 0.5, "influence-LOO correlation {r}");
}

#[test]
fn weightspace_classifier_on_lake_fingerprints() {
    let gt = generate_lake(&LakeSpec {
        seed: 5,
        num_base_models: 6,
        derivations_per_base: 4,
        ..LakeSpec::tiny(5)
    });
    let features: Vec<Vec<f32>> = gt
        .models
        .iter()
        .map(|m| model_dna(&m.model, 32, 3))
        .collect();
    let labels: Vec<&str> = gt
        .models
        .iter()
        .map(|m| if m.model.as_lm().is_some() { "lm" } else { "classifier" })
        .collect();
    let clf =
        PropertyClassifier::train(&features, &labels, &WeightSpaceConfig::default()).unwrap();
    let acc = clf.accuracy(&features, &labels).unwrap();
    // Family membership is trivially decodable from weights.
    assert!(acc > majority_baseline(&labels), "acc {acc}");
}

#[test]
fn cka_separates_lineage_from_strangers() {
    let gt = generate_lake(&LakeSpec::tiny(21));
    let probes = ProbeSet::standard(8, 24, 2.5, 24, 8, 2, Seed::new(4));
    let fp = Fingerprinter::new(32, 1, probes);
    // Find a weight-preserving MLP edge and an unrelated MLP pair.
    let edge = gt
        .edges
        .iter()
        .find(|e| {
            e.kind.preserves_weights()
                && gt.models[e.parent].model.as_mlp().is_some()
                && gt.models[e.child].model.as_mlp().is_some()
                && gt.models[e.parent].model.architecture()
                    == gt.models[e.child].model.architecture()
        })
        .expect("weight-preserving MLP edge exists");
    let stranger = (0..gt.models.len())
        .find(|&i| {
            gt.models[i].family != gt.models[edge.parent].family
                && gt.models[i].model.as_mlp().is_some()
        })
        .expect("stranger exists");
    let rep_parent = fp.representation(&gt.models[edge.parent].model, 0).unwrap();
    let rep_child = fp.representation(&gt.models[edge.child].model, 0).unwrap();
    let rep_stranger = fp.representation(&gt.models[stranger].model, 0).unwrap();
    let kin = linear_cka(&rep_parent, &rep_child).unwrap();
    let far = linear_cka(&rep_parent, &rep_stranger).unwrap();
    assert!(kin > far, "CKA kin {kin} !> stranger {far}");
}

#[test]
fn fingerprints_round_trip_through_hnsw() {
    let gt = generate_lake(&LakeSpec::tiny(31));
    let probes = ProbeSet::standard(8, 24, 2.5, 24, 8, 2, Seed::new(9));
    let fp = Fingerprinter::new(48, 2, probes);
    let mut hnsw = HnswIndex::new(HnswConfig::default());
    let mut flat = FlatIndex::new();
    let vectors: Vec<Vec<f32>> = gt
        .models
        .iter()
        .map(|m| fp.hybrid(&m.model).unwrap())
        .collect();
    for (i, v) in vectors.iter().enumerate() {
        hnsw.insert(i as u64, v).unwrap();
        flat.insert(i as u64, v).unwrap();
    }
    // On a lake-sized set, HNSW must agree with the exact scan, and the top
    // hit must sit at ~zero distance (self, or a near-duplicate model such
    // as a surgically edited child — ties break by id).
    for (i, v) in vectors.iter().enumerate() {
        let h = hnsw.search(v, 3).unwrap();
        let f = flat.search(v, 3).unwrap();
        assert_eq!(
            h.iter().map(|x| x.id).collect::<Vec<_>>(),
            f.iter().map(|x| x.id).collect::<Vec<_>>(),
            "query {i}"
        );
        assert!(h[0].distance < 1e-4, "query {i}: top distance {}", h[0].distance);
        assert!(
            h.iter().any(|x| x.id == i as u64),
            "query {i}: self missing from top-3 {h:?}"
        );
    }
}

#[test]
fn artifact_store_round_trips_lake_models() {
    let gt = generate_lake(&LakeSpec::tiny(41));
    let store = ResidentStore::new();
    let mut digests = Vec::new();
    for m in &gt.models {
        digests.push(store.put(&m.model.to_bytes().expect("serializes")));
    }
    for (m, d) in gt.models.iter().zip(&digests) {
        let bytes = store.get(d).unwrap();
        let decoded = model_lakes::nn::Model::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.flat_params(), m.model.flat_params());
        // Content addressing is consistent with a fresh hash.
        assert_eq!(*d, sha256(&bytes));
    }
    // Identical models deduplicate.
    let before = store.len();
    store.put(&gt.models[0].model.to_bytes().expect("serializes"));
    assert_eq!(store.len(), before);
}
